//! `wire:*` experiments: the byte-transport stack measured against the
//! paper's §2.4 analytic model.
//!
//! * [`run_loopback`] streams a one-way bulk workload between two
//!   [`WireEndpoint`]s on the deterministic loopback hub and reports the
//!   achieved pairwise bandwidth at several window sizes against the
//!   Equation 1 ceiling `L / max(T_send, T_receive, T_link)`. The transport
//!   port charges one cycle per word of serialization, so `T_link =
//!   size_words` and the ceiling is exactly [`BYTES_PER_WORD`] bytes per
//!   cycle; Equation 3 predicts the window that reaches it.
//! * [`run_udp`] runs the same exchange over two real UDP sockets on
//!   localhost — a smoke-scale proof that the stack survives an operating
//!   system's delivery behavior, with the §6.2 machinery absorbing any
//!   loss.

use nifdy::analysis::{min_window_combined_acks, pairwise_bandwidth, roundtrip, Timing};
use nifdy::{NifdyConfig, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::NodeId;
use nifdy_wire::codec::BYTES_PER_WORD;
use nifdy_wire::{LoopbackHub, UdpTransport, WireEndpoint};

use crate::{Scale, Table};

/// Packet length every wire measurement uses, matching the paper's
/// library-driven workloads (6 words including the header).
pub const SIZE_WORDS: u16 = 6;

/// Fixed one-way hub latency for the loopback measurements, in cycles.
pub const HUB_LATENCY: u64 = 8;

/// One measured cell of the loopback bandwidth table.
#[derive(Debug, Clone, Copy)]
pub struct WirePoint {
    /// Window size (0 = scalar mode, no dialog).
    pub window: u8,
    /// Packets streamed.
    pub packets: u32,
    /// Hub cycles from first injection to last delivery.
    pub cycles: u64,
    /// Achieved bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
}

fn config(window: u8, bulk: bool) -> NifdyConfig {
    NifdyConfig::builder()
        .opt_entries(4)
        .pool_entries(8)
        .max_dialogs(if bulk { 1 } else { 0 })
        .window(window.max(2))
        .build()
        .expect("wire measurement config is valid")
}

/// Streams `packets` 6-word packets from node 0 to node 1 over the loopback
/// hub and returns the achieved bandwidth. `window == 0` runs scalar mode.
fn measure(window: u8, packets: u32, seed: u64) -> WirePoint {
    let bulk = window > 0;
    let hub = LoopbackHub::new(2, HUB_LATENCY);
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    let mut tx = WireEndpoint::new(n0, config(window, bulk), hub.endpoint(n0));
    let mut rx = WireEndpoint::new(n1, config(window, bulk), hub.endpoint(n1));
    let mut sent = 0u32;
    let mut got = 0u32;
    let mut last_delivery = 0u64;
    let deadline = 200_000 + u64::from(packets) * 200;
    while got < packets {
        let now = hub.now().as_u64();
        assert!(now < deadline, "wire measurement wedged at {got}/{packets}");
        if sent < packets {
            let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                .with_bulk(bulk)
                .with_user(UserData {
                    msg_id: seed,
                    pkt_index: sent,
                    msg_packets: packets,
                    user_words: SIZE_WORDS - 2,
                });
            if tx.try_send(pkt) {
                sent += 1;
            }
        }
        tx.step();
        rx.step();
        while let Some(d) = rx.poll() {
            assert_eq!(d.user.pkt_index, got, "out-of-order delivery");
            got += 1;
            last_delivery = hub.now().as_u64();
        }
        hub.tick();
    }
    let bytes = u64::from(packets) * u64::from(SIZE_WORDS) * BYTES_PER_WORD as u64;
    WirePoint {
        window,
        packets,
        cycles: last_delivery,
        bytes_per_cycle: bytes as f64 / last_delivery as f64,
    }
}

/// The loopback pairwise-bandwidth experiment: scalar mode plus a window
/// sweep, rendered against the Equation 1 ceiling.
pub fn run_loopback(scale: Scale, seed: u64) -> (Table, Vec<WirePoint>) {
    let packets = scale.count(2_048) as u32;
    // The transport port serializes one word per cycle, so T_link is the
    // packet length; the drive loop injects and polls every cycle, so the
    // endpoint overheads are one cycle each.
    let timing = Timing {
        t_send: 1,
        t_receive: 1,
        t_link: u64::from(SIZE_WORDS),
        t_ackproc: 2,
    };
    let payload = u64::from(SIZE_WORDS) * BYTES_PER_WORD as u64;
    let ceiling = pairwise_bandwidth(payload, timing);
    // One-way frame time: hub latency plus serialization plus the
    // tick/step handoff on each side.
    let t_lat = HUB_LATENCY + u64::from(SIZE_WORDS) + 2;
    let t_roundtrip = roundtrip(t_lat, timing.t_ackproc);
    let w_min = min_window_combined_acks(t_roundtrip, timing.bottleneck());

    let mut table = Table::new(
        format!(
            "nifdy-wire: loopback pairwise bandwidth, 2 nodes, {SIZE_WORDS}-word packets, \
             hub latency {HUB_LATENCY} (Eq.1 ceiling {ceiling:.2} B/cyc; \
             Eq.3 predicts W >= {w_min} at T_roundtrip {t_roundtrip})"
        ),
        vec![
            "mode".into(),
            "window".into(),
            "packets".into(),
            "cycles".into(),
            "B/cyc".into(),
            "% of Eq.1".into(),
        ],
    );
    let mut points = Vec::new();
    for window in [0u8, 2, 4, 8, 16, 32] {
        let p = measure(window, packets, seed);
        table.row(vec![
            if window == 0 { "scalar" } else { "bulk" }.into(),
            if window == 0 {
                "-".into()
            } else {
                window.to_string()
            },
            p.packets.to_string(),
            p.cycles.to_string(),
            format!("{:.2}", p.bytes_per_cycle),
            format!("{:.1}", 100.0 * p.bytes_per_cycle / ceiling),
        ]);
        points.push(p);
    }
    (table, points)
}

/// Result of the two-node UDP exchange.
#[derive(Debug, Clone, Copy)]
pub struct UdpReport {
    /// Packets delivered in order at the receiver.
    pub delivered: u64,
    /// Data retransmissions the sender issued (OS drops absorbed).
    pub retransmits: u64,
    /// Wall-clock milliseconds for the exchange.
    pub millis: u128,
}

/// Streams a bulk message between two localhost UDP sockets driven from one
/// thread (step the sender, step the receiver, repeat) and asserts in-order
/// exactly-once delivery.
pub fn run_udp(scale: Scale, seed: u64) -> std::io::Result<UdpReport> {
    let packets = scale.count(500) as u32;
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    let mut t0 = UdpTransport::bind(n0, "127.0.0.1:0")?;
    let mut t1 = UdpTransport::bind(n1, "127.0.0.1:0")?;
    t0.add_peer(n1, t1.local_addr()?);
    t1.add_peer(n0, t0.local_addr()?);
    let cfg = config(8, true).with_retx_timeout(20_000);
    let mut tx = WireEndpoint::new(n0, cfg.clone(), t0);
    let mut rx = WireEndpoint::new(n1, cfg, t1);
    let start = std::time::Instant::now();
    let mut sent = 0u32;
    let mut got = 0u32;
    while got < packets || !tx.is_idle() {
        assert!(
            start.elapsed().as_secs() < 120,
            "udp exchange wedged at {got}/{packets}"
        );
        if sent < packets {
            let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                .with_bulk(true)
                .with_user(UserData {
                    msg_id: seed,
                    pkt_index: sent,
                    msg_packets: packets,
                    user_words: SIZE_WORDS - 2,
                });
            if tx.try_send(pkt) {
                sent += 1;
            }
        }
        tx.step();
        rx.step();
        assert!(
            tx.take_failures().is_empty(),
            "sender gave up on a delivery"
        );
        while let Some(d) = rx.poll() {
            assert_eq!(d.user.pkt_index, got, "out-of-order delivery over UDP");
            got += 1;
        }
    }
    Ok(UdpReport {
        delivered: rx.stats().delivered.get(),
        retransmits: tx.stats().retransmitted.get(),
        millis: start.elapsed().as_millis(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_bandwidth_scales_with_window() {
        let (_, points) = run_loopback(Scale::Smoke, 1);
        assert_eq!(points.len(), 6);
        let scalar = points[0].bytes_per_cycle;
        let widest = points.last().expect("points").bytes_per_cycle;
        assert!(
            widest > 2.0 * scalar,
            "a wide window must beat scalar mode ({widest:.2} vs {scalar:.2})"
        );
        let ceiling = BYTES_PER_WORD as f64;
        assert!(
            widest <= ceiling * 1.001,
            "nothing exceeds the Equation 1 ceiling"
        );
        assert!(
            widest >= ceiling * 0.80,
            "a wide window should approach the ceiling, got {widest:.2}"
        );
    }

    #[test]
    fn udp_exchange_delivers_everything() {
        let report = run_udp(Scale::Smoke, 3).expect("sockets bind on localhost");
        assert_eq!(report.delivered, Scale::Smoke.count(500));
    }
}
