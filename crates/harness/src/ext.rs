//! Extension experiments beyond the paper's numbered figures:
//!
//! * [`run_adaptive`] — the §6.3 future-work study: NIFDY × adaptive
//!   routing on the mesh ("adding the admission control and in-order
//!   delivery of NIFDY may help adaptive routing reach its potential").
//! * [`run_loadsweep`] — the §1 *operating range* curve: delivered
//!   throughput and latency as offered load rises, with and without NIFDY.

use nifdy_traffic::{NetworkKind, NicChoice, OpenLoopConfig, SyntheticConfig};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// One adaptive-routing cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePoint {
    /// `"deterministic"` or `"adaptive"`.
    pub routing: &'static str,
    /// Interface configuration label.
    pub config: &'static str,
    /// Packets delivered (heavy synthetic window).
    pub heavy: u64,
    /// Packets delivered (light synthetic window).
    pub light: u64,
}

fn synthetic_cell(adaptive: bool, choice: &NicChoice, heavy: bool, scale: Scale, seed: u64) -> u64 {
    let kind = if adaptive {
        NetworkKind::AdaptiveMesh2D
    } else {
        NetworkKind::Mesh2D
    };
    let mut d = crate::scenario(kind)
        .seed(seed)
        .nic(choice.clone())
        .build_with(|sc| {
            let cfg = if heavy {
                SyntheticConfig::heavy(sc.seed())
            } else {
                SyntheticConfig::light(sc.seed())
            };
            cfg.build(sc.nodes())
        })
        .expect("extension cell builds");
    d.run_cycles(scale.cycles(1_000_000));
    d.packets_received()
}

/// §6.3: deterministic vs west-first adaptive mesh, with and without NIFDY.
/// The in-order column uses the reorder-free library only where it is safe:
/// the adaptive mesh reorders, so without NIFDY its library must reorder in
/// software — which is exactly why the paper expects NIFDY to unlock
/// adaptive routing.
pub fn run_adaptive(scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<AdaptivePoint>) {
    let cell = exec::cell_seed("ext:adaptive", 0, seed);
    let preset = NetworkKind::Mesh2D.nifdy_preset();
    let mut table = Table::new(
        format!(
            "§6.3 extension: adaptive routing on the 8x8 mesh \
             (packets delivered in {} cycles)",
            scale.cycles(1_000_000)
        ),
        vec![
            "routing".into(),
            "config".into(),
            "heavy".into(),
            "light".into(),
        ],
    );
    let mut cells = Vec::new();
    for (routing, adaptive) in [("deterministic", false), ("adaptive", true)] {
        for (label, choice) in [
            ("none", NicChoice::Plain),
            ("nifdy", NicChoice::Nifdy(preset.clone())),
        ] {
            cells.push((routing, adaptive, label, choice));
        }
    }
    let points = exec::map(jobs, cells, |(routing, adaptive, label, choice), _| {
        let heavy = synthetic_cell(adaptive, &choice, true, scale, cell);
        let light = synthetic_cell(adaptive, &choice, false, scale, cell);
        AdaptivePoint {
            routing,
            config: label,
            heavy,
            light,
        }
    });
    for p in &points {
        table.row(vec![
            p.routing.into(),
            p.config.into(),
            p.heavy.to_string(),
            p.light.to_string(),
        ]);
    }
    (table, points)
}

/// One offered-load sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Interface configuration label.
    pub config: &'static str,
    /// Send interval per node, in cycles (1/offered rate).
    pub interval: u64,
    /// Delivered packets per 1000 cycles (whole machine).
    pub throughput: f64,
    /// Mean in-fabric latency, cycles.
    pub latency: f64,
}

/// §1's operating-range curve on the 8×8 mesh: offered load rises left to
/// right; without admission control, throughput saturates while latency
/// blows up.
pub fn run_loadsweep(scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<LoadPoint>) {
    let intervals = [800u64, 400, 200, 120, 80, 60, 45];
    let preset = NetworkKind::Mesh2D.nifdy_preset();
    let window = scale.cycles(300_000);
    let mut table = Table::new(
        format!("§1 operating range: 8x8 mesh, open-loop load sweep ({window} cycles)"),
        vec![
            "interval".into(),
            "none pkts/kcyc".into(),
            "none latency".into(),
            "nifdy pkts/kcyc".into(),
            "nifdy latency".into(),
        ],
    );
    let mut cells = Vec::new();
    for (row, &interval) in intervals.iter().enumerate() {
        let row_seed = exec::cell_seed("ext:loadsweep", row as u64, seed);
        for (label, choice) in [
            ("none", NicChoice::Plain),
            ("nifdy", NicChoice::Nifdy(preset.clone())),
        ] {
            cells.push((interval, label, choice, row_seed));
        }
    }
    let points = exec::map(jobs, cells, |(interval, label, choice, s), _| {
        let mut d = crate::scenario(NetworkKind::Mesh2D)
            .seed(s)
            .nic(choice.clone())
            .build_with(|sc| OpenLoopConfig::new(interval, sc.seed()).build(sc.nodes()))
            .expect("extension cell builds");
        d.run_cycles(window);
        let throughput = d.packets_received() as f64 / (window as f64 / 1000.0);
        let latency = d.fabric().stats().latency.mean();
        LoadPoint {
            config: label,
            interval,
            throughput,
            latency,
        }
    });
    for pair in points.chunks(2) {
        let mut row = vec![pair[0].interval.to_string()];
        for p in pair {
            row.push(format!("{:.1}", p.throughput));
            row.push(format!("{:.0}", p.latency));
        }
        table.row(row);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nifdy_helps_adaptive_routing_more_than_deterministic() {
        // The historical result reproduces: minimal-adaptive routing on a
        // single-VC mesh *underperforms* dimension-order under uniform load
        // ("adaptive routing on a mesh ... in the past has not performed
        // well enough to justify its expense", §6.3). The hypothesis under
        // test is that NIFDY's admission control closes part of that gap:
        // its relative gain on the adaptive mesh exceeds its gain on the
        // deterministic one.
        let (_, points) = run_adaptive(Scale::Smoke, 2, Jobs::new(4));
        assert_eq!(points.len(), 4);
        let get = |routing: &str, config: &str| {
            points
                .iter()
                .find(|p| p.routing == routing && p.config == config)
                .expect("cell")
                .heavy as f64
        };
        let gain_adaptive = get("adaptive", "nifdy") / get("adaptive", "none");
        let gain_det = get("deterministic", "nifdy") / get("deterministic", "none");
        assert!(
            gain_adaptive + 0.02 >= gain_det,
            "NIFDY gain on adaptive ({gain_adaptive:.2}) should be at least              its deterministic gain ({gain_det:.2})"
        );
    }

    #[test]
    fn latency_blows_up_at_saturation_without_nifdy() {
        let (_, points) = run_loadsweep(Scale::Smoke, 3, Jobs::new(4));
        let plain: Vec<&LoadPoint> = points.iter().filter(|p| p.config == "none").collect();
        let lightest = plain.first().expect("points");
        let heaviest = plain.last().expect("points");
        assert!(
            heaviest.latency > 2.0 * lightest.latency,
            "no saturation knee: {} -> {}",
            lightest.latency,
            heaviest.latency
        );
    }
}
