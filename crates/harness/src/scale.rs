//! Run-length scaling, so the same experiments serve the full paper-scale
//! reproduction, quick checks, and CI-sized smoke tests.

/// How long to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's measurement windows (e.g. 1,000,000 cycles for
    /// Figures 2/3).
    Full,
    /// One tenth of the full windows: shapes hold, runs are fast.
    Quick,
    /// One fiftieth: just enough to exercise every code path (tests).
    Smoke,
}

impl Scale {
    /// Scales a full-size cycle budget.
    pub fn cycles(&self, full: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Quick => full / 10,
            Scale::Smoke => full / 50,
        }
    }

    /// Scales a work-item count (phases, words, keys) with a floor of 1.
    pub fn count(&self, full: u64) -> u64 {
        self.cycles(full).max(1)
    }

    /// Parses a CLI flag.
    pub fn from_flag(flag: &str) -> Option<Scale> {
        match flag {
            "--full" => Some(Scale::Full),
            "--quick" => Some(Scale::Quick),
            "--smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_divide_budgets() {
        assert_eq!(Scale::Full.cycles(1_000_000), 1_000_000);
        assert_eq!(Scale::Quick.cycles(1_000_000), 100_000);
        assert_eq!(Scale::Smoke.cycles(1_000_000), 20_000);
        assert_eq!(Scale::Smoke.count(10), 1);
    }

    #[test]
    fn flags_parse() {
        assert_eq!(Scale::from_flag("--quick"), Some(Scale::Quick));
        assert_eq!(Scale::from_flag("--bogus"), None);
    }
}
