//! `trace:analyze` — offline journey analysis of a seeded chaos run on
//! *both* carriers.
//!
//! The command replays the chaos-conformance workload (pair-rotation
//! traffic under recoverable bursty loss) twice — once through the
//! simulated fabric's flit-level fault plane, once through the byte
//! stack's [`FaultyTransport`] chaos plane — with the flight recorder on,
//! then feeds each trace to [`nifdy_analyze::analyze`]: journey
//! stitching, per-flow latency decomposition, conservation invariants,
//! and anomaly detection (DESIGN.md §12).
//!
//! Beyond the per-carrier verdicts, the run asserts journey-level
//! sim/wire equivalence: both carriers must reconstruct a journey for
//! every delivered packet, and the per-flow completed-journey populations
//! must agree — the carriers retransmit differently, but what arrives is
//! protocol-determined.
//!
//! Everything here is a pure function of `(scale, seed)`: repeated runs
//! produce byte-identical tables and JSON reports.
//!
//! [`FaultyTransport`]: nifdy_wire::FaultyTransport

use nifdy_analyze::{analyze, enrich_chrome_trace, AnalysisReport, AnomalyConfig, ExternalCounts};
use nifdy_net::{FaultConfig, GilbertElliott};
use nifdy_trace::json::Json;
use nifdy_trace::{TraceConfig, TraceEvent, TraceHandle, TraceLoss};
use nifdy_wire::conformance::{run_fabric_chaos_traced, run_loopback_chaos_traced, WorkloadSpec};
use nifdy_wire::WireFaultConfig;

use crate::Scale;

/// Mean Gilbert–Elliott loss both chaos planes run at — recoverable, so
/// every journey is expected to complete.
pub const MEAN_LOSS: f64 = 0.02;

/// §6.2 retry budget; generous so recoverable loss never turns into a
/// typed failure.
pub const RETX_BUDGET: u32 = 30;

/// One-way loopback-hub latency for the wire carrier, in cycles.
pub const HUB_LATENCY: u64 = 2;

/// Loopback-hub jitter bound for the wire carrier, in cycles.
pub const HUB_JITTER: u64 = 1;

/// The seeded workload both carriers run: the chaos-conformance rotation
/// traffic, with the message count (and the drain deadline) scaled.
pub fn spec(scale: Scale, seed: u64) -> WorkloadSpec {
    let messages = scale.count(10);
    WorkloadSpec {
        nodes: 4,
        messages,
        packets_per_message: 6,
        size_words: 6,
        want_bulk: true,
        seed,
        max_cycles: 400_000 + 200_000 * messages,
    }
}

fn fabric_faults() -> FaultConfig {
    FaultConfig::default().with_burst(GilbertElliott::with_mean_loss(MEAN_LOSS))
}

/// The wire chaos plane: the same bursty loss plus corruption,
/// duplication, delay, and reordering — all recoverable.
fn wire_faults() -> WireFaultConfig {
    WireFaultConfig::default()
        .with_burst(GilbertElliott::with_mean_loss(MEAN_LOSS))
        .with_corrupt_prob(0.05)
        .with_duplicate_prob(0.05)
        .with_delay(0.05, 8)
        .with_reorder_prob(0.05)
}

/// One carrier's recorded trace and its analysis.
pub struct CarrierAnalysis {
    /// Carrier label ("fabric" or "wire").
    pub carrier: &'static str,
    /// The recorded event stream (kept for artifact export).
    pub events: Vec<TraceEvent>,
    /// Ring-buffer loss accounting for the run.
    pub loss: TraceLoss,
    /// Ground-truth delivery count from the chaos report.
    pub delivered: u64,
    /// The full analysis: journeys, flows, invariants, anomalies.
    pub report: AnalysisReport,
}

impl CarrierAnalysis {
    /// True when a journey was reconstructed for every delivered packet.
    pub fn coverage_ok(&self) -> bool {
        self.report.set.accepted() == self.delivered
    }

    /// Per-flow completed-journey populations, for cross-carrier
    /// comparison.
    fn flow_counts(&self) -> Vec<((usize, usize), u64)> {
        self.report
            .flows
            .iter()
            .map(|f| (f.flow, f.completed))
            .collect()
    }

    /// The journey-enriched Perfetto document for this carrier's run.
    pub fn enriched_trace(&self) -> String {
        enrich_chrome_trace(&self.events, &self.loss, &self.report.set)
    }
}

/// Both carriers analyzed, plus the cross-carrier equivalence verdict.
pub struct AnalyzeRun {
    /// The workload both carriers ran.
    pub spec: WorkloadSpec,
    /// The simulated-fabric carrier.
    pub fabric: CarrierAnalysis,
    /// The byte-stack loopback carrier.
    pub wire: CarrierAnalysis,
}

impl AnalyzeRun {
    /// True when the per-flow completed-journey populations agree across
    /// carriers.
    pub fn flows_equivalent(&self) -> bool {
        self.fabric.flow_counts() == self.wire.flow_counts()
    }

    /// The overall verdict: both carriers' invariants green, full journey
    /// coverage on both, and per-flow equivalence across them.
    pub fn ok(&self) -> bool {
        self.fabric.report.ok()
            && self.wire.report.ok()
            && self.fabric.coverage_ok()
            && self.wire.coverage_ok()
            && self.flows_equivalent()
    }

    /// The human-readable report: both carriers' tables followed by the
    /// cross-carrier verdict lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in [&self.fabric, &self.wire] {
            out.push_str(&format!(
                "=== trace:analyze [{}] seed {} ({} nodes, {} messages x {} packets, \
                 mean loss {MEAN_LOSS}) ===\n",
                c.carrier,
                self.spec.seed,
                self.spec.nodes,
                self.spec.messages,
                self.spec.packets_per_message,
            ));
            out.push_str(&format!(
                "delivered (ground truth): {}, journeys accepted: {}\n",
                c.delivered,
                c.report.set.accepted(),
            ));
            out.push_str(&c.report.table());
            out.push('\n');
        }
        let verdict = |ok: bool| if ok { "pass" } else { "FAIL" };
        out.push_str(&format!(
            "journey coverage: fabric {} wire {}\n",
            verdict(self.fabric.coverage_ok()),
            verdict(self.wire.coverage_ok()),
        ));
        out.push_str(&format!(
            "sim/wire per-flow equivalence: {}\n",
            verdict(self.flows_equivalent()),
        ));
        out.push_str(&format!("overall: {}\n", verdict(self.ok())));
        out
    }

    /// The machine-readable report CI archives: both carriers' full
    /// analysis JSON plus the equivalence verdicts. Deterministic for a
    /// given `(scale, seed)`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("experiment", Json::str("trace:analyze")),
            (
                "workload",
                Json::obj([
                    ("nodes", Json::u64(self.spec.nodes as u64)),
                    ("messages", Json::u64(self.spec.messages)),
                    (
                        "packets_per_message",
                        Json::u64(u64::from(self.spec.packets_per_message)),
                    ),
                    ("seed", Json::u64(self.spec.seed)),
                    ("mean_loss", Json::Num(MEAN_LOSS)),
                    ("retx_budget", Json::u64(u64::from(RETX_BUDGET))),
                ]),
            ),
            ("fabric", carrier_json(&self.fabric)),
            ("wire", carrier_json(&self.wire)),
            (
                "equivalence",
                Json::obj([
                    ("fabric_coverage", Json::Bool(self.fabric.coverage_ok())),
                    ("wire_coverage", Json::Bool(self.wire.coverage_ok())),
                    ("flows_match", Json::Bool(self.flows_equivalent())),
                    ("ok", Json::Bool(self.ok())),
                ]),
            ),
        ])
    }
}

fn carrier_json(c: &CarrierAnalysis) -> Json {
    Json::obj([
        ("carrier", Json::str(c.carrier)),
        ("delivered", Json::u64(c.delivered)),
        ("report", c.report.to_json()),
    ])
}

/// Runs the seeded chaos workload on both carriers with the flight
/// recorder on and analyzes each trace. Requires the `trace` feature
/// (default) — with it off the recorder captures nothing and every
/// invariant that needs events fails.
pub fn run(scale: Scale, seed: u64) -> AnalyzeRun {
    let spec = spec(scale, seed);
    // Unsampled, amply sized: journey stitching wants the whole story.
    let recorder = || TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 16));

    let fab_trace = recorder();
    let fab = run_fabric_chaos_traced(&spec, fabric_faults(), RETX_BUDGET, &fab_trace);
    let fab_events = fab_trace.snapshot();
    let fab_loss = fab_trace.loss();
    let fab_report = analyze(
        &fab_events,
        &fab_loss,
        &ExternalCounts {
            delivered: Some(fab.delivered()),
            retransmitted: Some(fab.retransmitted),
            delivery_failures: Some(fab.failure_total()),
            fabric_drops: Some(fab.fabric_dropped),
            wire_faults: None,
        },
        &AnomalyConfig::default(),
    );

    let wire_trace = recorder();
    let wire = run_loopback_chaos_traced(
        &spec,
        HUB_LATENCY,
        HUB_JITTER,
        &wire_faults(),
        RETX_BUDGET,
        &wire_trace,
    );
    let wire_events = wire_trace.snapshot();
    let wire_loss = wire_trace.loss();
    let wire_report = analyze(
        &wire_events,
        &wire_loss,
        &ExternalCounts {
            delivered: Some(wire.delivered()),
            retransmitted: Some(wire.retransmitted),
            delivery_failures: Some(wire.failure_total()),
            fabric_drops: None,
            wire_faults: Some(wire.wire_fault_total()),
        },
        &AnomalyConfig::default(),
    );

    AnalyzeRun {
        spec,
        fabric: CarrierAnalysis {
            carrier: "fabric",
            events: fab_events,
            loss: fab_loss,
            delivered: fab.delivered(),
            report: fab_report,
        },
        wire: CarrierAnalysis {
            carrier: "wire",
            events: wire_events,
            loss: wire_loss,
            delivered: wire.delivered(),
            report: wire_report,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_green_and_deterministic() {
        let a = run(Scale::Smoke, 5);
        assert!(a.ok(), "trace:analyze smoke run not green:\n{}", a.render());
        assert!(a.fabric.delivered > 0);
        let b = run(Scale::Smoke, 5);
        assert_eq!(
            a.to_json().render(),
            b.to_json().render(),
            "trace:analyze JSON must be byte-deterministic"
        );
        assert_eq!(a.render(), b.render());
        assert_eq!(a.fabric.enriched_trace(), b.fabric.enriched_trace());
    }

    #[test]
    fn json_has_both_carriers_and_verdicts() {
        let a = run(Scale::Smoke, 3);
        let json = a.to_json();
        for key in ["workload", "fabric", "wire", "equivalence"] {
            assert!(json.get(key).is_some(), "missing section {key}");
        }
        assert!(
            matches!(
                json.get("equivalence").and_then(|e| e.get("ok")),
                Some(Json::Bool(true))
            ),
            "equivalence verdict must be green"
        );
        let enriched = a.wire.enriched_trace();
        assert!(enriched.contains("\"cat\":\"journey\""));
    }
}
