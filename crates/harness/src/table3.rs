//! Table 3: characteristics of the simulated 64-node networks together with
//! the best NIFDY parameters for each. Hop statistics come from the
//! topology, the latency model from a zero-load probe of the real fabric,
//! and the volume from the configured buffering.

use nifdy_net::topology::hop_profile;
use nifdy_net::{Fabric, Lane, Packet};
use nifdy_sim::{NodeId, PacketId};

use nifdy_traffic::NetworkKind;

use crate::exec::{self, Jobs};
use crate::report::Table;

/// One network's Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Network label.
    pub network: &'static str,
    /// Average internode distance in hops.
    pub avg_hops: f64,
    /// Maximum internode distance in hops.
    pub max_hops: u32,
    /// Zero-load latency fit `T_lat(d) ≈ slope·d + intercept` (cycles).
    pub lat_slope: f64,
    /// Zero-load latency intercept (cycles).
    pub lat_intercept: f64,
    /// Fabric buffering per node, in flits (the paper's "volume").
    pub volume_flits_per_node: f64,
    /// Best NIFDY parameters `(O, B, D, W)`.
    pub params: (u8, u8, u8, u8),
}

/// Measures the zero-load latency of an 8-word packet at every distinct hop
/// distance and fits a line.
pub fn probe_latency(kind: NetworkKind, seed: u64) -> (f64, f64) {
    let topo = kind.topology(64, seed);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let src = NodeId::new(0);
    for d in 0..64 {
        if d == 0 {
            continue;
        }
        let dst = NodeId::new(d);
        let hops = topo.hops(src, dst);
        if !seen.insert(hops) {
            continue;
        }
        let mut fab = Fabric::new(kind.topology(64, seed), kind.fabric_config(seed));
        fab.inject(src, Packet::data(PacketId::new(1), src, dst, 8));
        let start = fab.now();
        loop {
            fab.step();
            if fab.eject(dst, Lane::Request).is_some() {
                break;
            }
            assert!(fab.now().as_u64() < 100_000, "probe packet lost");
        }
        samples.push((f64::from(hops), (fab.now() - start) as f64));
    }
    linear_fit(&samples)
}

/// Least-squares fit returning `(slope, intercept)`; a single point yields
/// slope 0.
fn linear_fit(samples: &[(f64, f64)]) -> (f64, f64) {
    let n = samples.len() as f64;
    if samples.len() < 2 {
        return (0.0, samples.first().map_or(0.0, |&(_, y)| y));
    }
    let sx: f64 = samples.iter().map(|&(x, _)| x).sum();
    let sy: f64 = samples.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = samples.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = samples.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Computes one network's profile.
pub fn profile(kind: NetworkKind, seed: u64) -> NetworkProfile {
    let topo = kind.topology(64, seed);
    let (avg_hops, max_hops) = hop_profile(topo.as_ref());
    let (lat_slope, lat_intercept) = probe_latency(kind, seed);
    let cfg = kind.fabric_config(seed);
    let spec = topo.spec();
    // Request-lane buffering per node: internal link buffers plus the node
    // interfaces' ejection assembly, in flits.
    let internal = spec.num_internal_links() as f64
        * f64::from(cfg.vc_buf_flits)
        * f64::from(cfg.vcs_per_lane);
    let eject = 64.0 * f64::from(cfg.max_packet_flits);
    let volume = (internal + eject) / 64.0;
    let p = kind.nifdy_preset();
    NetworkProfile {
        network: kind.label(),
        avg_hops,
        max_hops,
        lat_slope,
        lat_intercept,
        volume_flits_per_node: volume,
        params: (p.opt_entries, p.pool_entries, p.max_dialogs, p.window),
    }
}

/// Builds the full Table 3, profiling the eight networks on `jobs`
/// workers. Each network row gets its own derived seed.
pub fn run(seed: u64, jobs: Jobs) -> (Table, Vec<NetworkProfile>) {
    let mut table = Table::new(
        "Table 3: simulated 64-node networks and best NIFDY parameters",
        vec![
            "network".into(),
            "avg d".into(),
            "max d".into(),
            "T_lat fit".into(),
            "volume (flits/node)".into(),
            "O".into(),
            "B".into(),
            "D".into(),
            "W".into(),
        ],
    );
    let profiles = exec::map(jobs, NetworkKind::ALL.to_vec(), |kind, row| {
        profile(kind, exec::cell_seed("table3", row as u64, seed))
    });
    for p in &profiles {
        table.row(vec![
            p.network.into(),
            format!("{:.1}", p.avg_hops),
            p.max_hops.to_string(),
            format!("{:.1}d + {:.0}", p.lat_slope, p.lat_intercept),
            format!("{:.0}", p.volume_flits_per_node),
            p.params.0.to_string(),
            p.params.1.to_string(),
            p.params.2.to_string(),
            p.params.3.to_string(),
        ]);
    }
    (table, profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_a_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|x| (x as f64, 3.0 * x as f64 + 7.0)).collect();
        let (m, b) = linear_fit(&pts);
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b - 7.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_latency_fit_resembles_the_paper() {
        // Paper: T_lat(d) = 4d + 14 for the 8x8 mesh. Our pipeline differs
        // slightly; the slope must be in the same regime (serialization-
        // dominated, ~4-6 cycles/hop) with a positive intercept from
        // injection serialization.
        let (slope, intercept) = probe_latency(NetworkKind::Mesh2D, 1);
        assert!(
            (3.0..=8.0).contains(&slope),
            "mesh slope {slope} out of regime"
        );
        assert!(intercept > 0.0, "mesh intercept {intercept}");
    }

    #[test]
    fn butterfly_has_constant_distance() {
        let p = profile(NetworkKind::Butterfly, 1);
        assert_eq!(p.max_hops, 3);
        assert!((p.avg_hops - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cm5_is_slower_than_the_full_fat_tree() {
        let (s_full, i_full) = probe_latency(NetworkKind::FatTree, 1);
        let (s_cm5, i_cm5) = probe_latency(NetworkKind::Cm5, 1);
        // 4-bit time-multiplexed links roughly double per-hop time.
        assert!(
            s_cm5 + i_cm5 / 6.0 > s_full + i_full / 6.0,
            "cm5 ({s_cm5}, {i_cm5}) should be slower than full ({s_full}, {i_full})"
        );
    }
}
