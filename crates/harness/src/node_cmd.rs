//! `node:*` commands: the many-endpoint daemon (`node:serve`) and the
//! multi-process localhost swarm (`node:swarm`).
//!
//! * [`run_serve`] hosts N logical endpoints inside one carrier-less daemon
//!   and drives a seeded workload through it, reporting throughput and the
//!   per-shard [`NodeStats`](nifdy_node::NodeStats) breakdown. The same
//!   entry point doubles as the hidden `--swarm-child` mode the swarm
//!   parent spawns.
//! * [`run_swarm`] partitions the logical node range over M child
//!   processes of this very binary, connects them over real UDP sockets,
//!   runs the planned workload, and gates the aggregated per-destination
//!   delivery order byte-for-byte against the flit-level simulator
//!   ([`run_sim_reference`]). With `--kill` it SIGKILLs one child
//!   mid-workload, respawns it with a bumped epoch, and gates completeness
//!   plus recovery evidence instead of order parity.
//!
//! # Wire protocol between parent and child (newline-delimited, stdio)
//!
//! ```text
//! child  -> parent   PORT <addr>          once, after binding its socket
//! parent -> child    PEER <proc> <addr>   repeatable, also after a respawn
//! parent -> child    GO                   peers are in place, start
//! child  -> parent   PROG <unique>        periodic progress
//! child  -> parent   COMPLETE             local workload drained
//! parent -> child    STOP                 dump state and exit
//! child  -> parent   LOG <src> <dst> <msg_id> <pkt>   delivery order
//! child  -> parent   STATS <json>         counters, one line
//! child  -> parent   DONE                 clean exit follows
//! ```
//!
//! All node-specific flags use `--key=value` form so the binary's global
//! argument parser can forward them opaquely.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use nifdy::NifdyConfig;
use nifdy_node::workload::{run_local, run_sim_reference, PlanFeeder, SwarmPlan};
use nifdy_node::{NifdyNode, NodeConfig};
use nifdy_sim::NodeId;
use nifdy_trace::json::{self, Json};
use nifdy_traffic::Em3dParams;
use nifdy_wire::conformance::DeliveryLog;
use nifdy_wire::{PeerEvent, SupervisorConfig, UdpTransport};

use crate::wire_cmd::SIZE_WORDS;
use crate::{Scale, Table};

/// Which planned workload the daemon or swarm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The conformance suite's fixed-point-free rotation permutation.
    Rotation,
    /// The paper's EM3D kernel (§4.4), cross-processor arcs only.
    Em3d,
}

impl WorkloadKind {
    fn label(self) -> &'static str {
        match self {
            WorkloadKind::Rotation => "rotation",
            WorkloadKind::Em3d => "em3d",
        }
    }
}

/// Parsed `node:*` options (all `--key=value` extras plus scale defaults).
#[derive(Debug, Clone)]
struct NodeOpts {
    workload: WorkloadKind,
    /// Logical endpoints a single `node:serve` daemon hosts.
    nodes: usize,
    /// Swarm process count.
    procs: usize,
    /// Logical endpoints per swarm process.
    per_proc: usize,
    shards: usize,
    batch: usize,
    messages: u64,
    packets: u32,
    bulk: bool,
    kill: bool,
    /// `node:serve`: also gate against the flit-level simulator.
    parity: bool,
    swarm_child: bool,
    /// This child's process index (`--swarm-child` only).
    proc: usize,
    /// Starting endpoint epoch (a respawned child passes the next one).
    epoch: u32,
}

impl NodeOpts {
    fn defaults(scale: Scale) -> Self {
        let (nodes, per_proc, messages, packets) = match scale {
            Scale::Full => (1024, 64, 2, 4),
            Scale::Quick => (256, 32, 1, 3),
            Scale::Smoke => (64, 16, 1, 2),
        };
        NodeOpts {
            workload: WorkloadKind::Rotation,
            nodes,
            procs: 4,
            per_proc,
            shards: 8,
            batch: 64,
            messages,
            packets,
            bulk: true,
            kill: false,
            parity: false,
            swarm_child: false,
            proc: 0,
            epoch: 0,
        }
    }
}

fn num<T: std::str::FromStr>(key: &str, val: Option<&str>) -> Result<T, String> {
    val.ok_or_else(|| format!("{key} needs a value ({key}=N)"))?
        .parse()
        .map_err(|_| format!("{key} needs a number, got '{}'", val.unwrap_or("")))
}

fn parse_opts(scale: Scale, extra: &[String]) -> Result<NodeOpts, String> {
    let mut o = NodeOpts::defaults(scale);
    for arg in extra {
        let (key, val) = match arg.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (arg.as_str(), None),
        };
        match key {
            "--workload" => {
                o.workload = match val {
                    Some("rotation") => WorkloadKind::Rotation,
                    Some("em3d") => WorkloadKind::Em3d,
                    other => {
                        return Err(format!(
                            "--workload must be rotation or em3d, got '{}'",
                            other.unwrap_or("")
                        ))
                    }
                }
            }
            "--nodes" => o.nodes = num(key, val)?,
            "--procs" => o.procs = num(key, val)?,
            "--per-proc" => o.per_proc = num(key, val)?,
            "--shards" => o.shards = num(key, val)?,
            "--batch" => o.batch = num(key, val)?,
            "--messages" => o.messages = num(key, val)?,
            "--packets" => o.packets = num(key, val)?,
            "--epoch" => o.epoch = num(key, val)?,
            "--proc" => o.proc = num(key, val)?,
            "--bulk" => o.bulk = true,
            "--scalar" => o.bulk = false,
            "--kill" => o.kill = true,
            "--parity" => o.parity = true,
            "--swarm-child" => o.swarm_child = true,
            _ => return Err(format!("unknown node flag '{arg}'")),
        }
    }
    if o.nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    if o.procs < 2 {
        return Err("--procs must be at least 2".into());
    }
    if o.per_proc < 1 || o.shards < 1 || o.batch < 1 || o.packets < 1 || o.messages < 1 {
        return Err("--per-proc/--shards/--batch/--messages/--packets must be positive".into());
    }
    if o.kill && o.workload != WorkloadKind::Rotation {
        return Err("node:swarm --kill supports --workload=rotation only".into());
    }
    Ok(o)
}

/// Small EM3D configuration sized for swarm smoke runs: mostly-local arcs
/// over a narrow span keep per-pair message counts modest at any scale.
fn em3d_params(seed: u64, scale: Scale) -> Em3dParams {
    Em3dParams {
        n_nodes: 20,
        d_nodes: 4,
        local_p: 50,
        dist_span: 8,
        iters: if scale == Scale::Full { 2 } else { 1 },
        seed,
        compute_per_iter: 0,
    }
}

/// Builds the plan for `total` logical nodes. Kill mode forces scalar
/// traffic: the crash-recovery contract (sender-side §6.2 state carrying a
/// flow across a peer's crash) is defined for scalar packets.
fn build_plan(o: &NodeOpts, scale: Scale, seed: u64, total: usize) -> SwarmPlan {
    let bulk = o.bulk && !o.kill;
    match o.workload {
        WorkloadKind::Rotation => {
            SwarmPlan::rotation(total, o.messages, o.packets, SIZE_WORDS, bulk, seed)
        }
        WorkloadKind::Em3d => SwarmPlan::em3d(total, em3d_params(seed, scale), SIZE_WORDS, bulk),
    }
}

fn scale_flag(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "--full",
        Scale::Quick => "--quick",
        Scale::Smoke => "--smoke",
    }
}

// ---------------------------------------------------------------------------
// node:serve
// ---------------------------------------------------------------------------

/// What `node:serve` produced.
#[derive(Debug)]
pub struct ServeReport {
    /// One-row throughput summary.
    pub summary: Table,
    /// Per-shard counter breakdown.
    pub shards: Table,
    /// Delivery order matched the plan's send order.
    pub order_ok: bool,
    /// `--parity` verdict against the flit-level simulator, if requested.
    pub sim_parity: Option<bool>,
    /// Endpoint-frames demultiplexed per wall second.
    pub frames_per_sec: f64,
}

impl ServeReport {
    /// Every requested gate held.
    pub fn ok(&self) -> bool {
        self.order_ok && self.sim_parity != Some(false)
    }
}

/// How `node:serve` ran.
#[derive(Debug)]
pub enum ServeOutcome {
    /// Normal daemon run; print the report.
    Report(Box<ServeReport>),
    /// `--swarm-child` mode: the stdio protocol already ran, print nothing.
    Child,
}

/// Runs a single many-endpoint daemon over the planned workload (or, with
/// `--swarm-child`, one swarm child process — see the module docs).
pub fn run_serve(scale: Scale, seed: u64, extra: &[String]) -> Result<ServeOutcome, String> {
    let opts = parse_opts(
        scale, // node:serve alone tolerates the swarm defaults; --procs is unused.
        extra,
    )?;
    if opts.swarm_child {
        swarm_child(scale, seed, &opts)?;
        return Ok(ServeOutcome::Child);
    }
    let plan = build_plan(&opts, scale, seed, opts.nodes);
    let cfg = NodeConfig::default()
        .with_shards(opts.shards)
        .with_batch(opts.batch)
        .with_seed(seed);
    let start = Instant::now();
    let run = run_local(&plan, cfg, 50_000_000);
    let millis = start.elapsed().as_millis().max(1);
    let order_ok = run.log == plan.expected_log();
    let sim_parity = if opts.parity {
        Some(run.log == run_sim_reference(&plan, 50_000_000))
    } else {
        None
    };
    let frames_per_sec = run.stats.frames_in as f64 * 1_000.0 / millis as f64;
    let packets = plan.total_packets();
    let mut summary = Table::new(
        format!(
            "nifdy-node: serve, {} endpoints / {} shards, {} workload ({}, seed {seed})",
            opts.nodes,
            opts.shards,
            opts.workload.label(),
            if plan.want_bulk { "bulk" } else { "scalar" },
        ),
        vec![
            "endpoints".into(),
            "packets".into(),
            "rounds".into(),
            "wall ms".into(),
            "frames/s".into(),
            "pkts/s".into(),
            "order".into(),
        ],
    );
    summary.row(vec![
        opts.nodes.to_string(),
        packets.to_string(),
        run.rounds.to_string(),
        millis.to_string(),
        format!("{frames_per_sec:.0}"),
        format!("{:.0}", packets as f64 * 1_000.0 / millis as f64),
        match (order_ok, sim_parity) {
            (true, Some(true)) => "plan+sim".into(),
            (true, None) => "plan".into(),
            _ => "DIVERGED".into(),
        },
    ]);
    let mut shards = Table::new(
        "per-shard breakdown".to_string(),
        vec![
            "shard".into(),
            "frames in".into(),
            "frames out".into(),
            "delivered".into(),
            "failures".into(),
        ],
    );
    for (i, s) in run.stats.shards.iter().enumerate() {
        shards.row(vec![
            i.to_string(),
            s.frames_in.to_string(),
            s.frames_out.to_string(),
            s.delivered.to_string(),
            s.failures.to_string(),
        ]);
    }
    Ok(ServeOutcome::Report(Box::new(ServeReport {
        summary,
        shards,
        order_ok,
        sim_parity,
        frames_per_sec,
    })))
}

// ---------------------------------------------------------------------------
// swarm child
// ---------------------------------------------------------------------------

fn emit(line: &str) {
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn apply_peer(node: &mut NifdyNode<UdpTransport>, c0: usize, rest: &str) -> Result<(), String> {
    let mut it = rest.split_whitespace();
    let idx: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("PEER needs a process index")?;
    let addr: std::net::SocketAddr = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("PEER needs a socket address")?;
    node.carrier_mut(c0).add_peer(NodeId::new(idx), addr);
    Ok(())
}

/// The swarm protocol configuration: adaptive RTO with a budget generous
/// enough that a kill-mode outage (thousands of fast poll rounds) is
/// absorbed as retransmissions, never surfacing a typed failure.
fn swarm_protocol(kill: bool) -> NifdyConfig {
    let base = NodeConfig::default().protocol;
    if kill {
        base.with_retx_timeout(256)
            .with_adaptive_rto(true)
            .with_retx_budget(10_000)
    } else {
        base.with_retx_timeout(5_000).with_adaptive_rto(true)
    }
}

/// Heartbeats every 256 rounds; the silence timeout is set far beyond any
/// scheduling hiccup because restart detection is epoch-driven (a spurious
/// `Down` would only be noise, but there is no reason to invite it).
fn swarm_supervisor() -> SupervisorConfig {
    SupervisorConfig::default()
        .with_heartbeat_every(256)
        .with_peer_timeout(1_000_000)
}

/// One swarm child: binds a socket, hosts its slice of the node range, and
/// speaks the stdio protocol until STOP.
fn swarm_child(scale: Scale, seed: u64, opts: &NodeOpts) -> Result<(), String> {
    let me = opts.proc;
    let k = opts.per_proc;
    let total = opts.procs * k;
    if me >= opts.procs {
        return Err(format!(
            "--proc={me} out of range for --procs={}",
            opts.procs
        ));
    }
    let plan = build_plan(opts, scale, seed, total);
    let owner = |n: usize| n / k;
    let hosted = me * k..(me + 1) * k;

    let carrier = UdpTransport::bind(NodeId::new(me), "127.0.0.1:0")
        .map_err(|e| format!("cannot bind swarm child socket: {e}"))?
        .with_pump_limit(opts.batch * 2);
    let addr = carrier
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;

    let cfg = NodeConfig::default()
        .with_shards(opts.shards)
        .with_batch(opts.batch)
        .with_protocol(swarm_protocol(opts.kill))
        .with_supervisor(swarm_supervisor())
        .with_initial_epoch(opts.epoch)
        .with_seed(seed.wrapping_add(me as u64));
    let mut node: NifdyNode<UdpTransport> = NifdyNode::new(cfg);
    let c0 = node.add_carrier(carrier);
    for n in hosted.clone() {
        node.add_endpoint(NodeId::new(n), plan.peers_of(n));
    }
    for n in 0..total {
        if !hosted.contains(&n) {
            node.set_route(NodeId::new(n), c0, NodeId::new(owner(n)));
        }
    }

    // Stdin arrives on a dedicated thread so the poll loop never blocks.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    emit(&format!("PORT {addr}"));
    let handshake_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) if line == "GO" => break,
            Ok(line) if line == "STOP" => return Ok(()),
            Ok(line) => {
                if let Some(rest) = line.strip_prefix("PEER ") {
                    apply_peer(&mut node, c0, rest)?;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() > handshake_deadline {
                    return Err("no GO from the swarm parent".into());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("swarm parent hung up before GO".into())
            }
        }
    }

    let expected_in = plan
        .sends
        .iter()
        .flatten()
        .filter(|p| hosted.contains(&p.dst.index()))
        .count() as u64;
    let mut feeders: Vec<(usize, PlanFeeder)> = hosted
        .clone()
        .map(|n| (n, PlanFeeder::new(&plan, n)))
        .collect();
    let mut log = DeliveryLog::new();
    let mut seen: BTreeSet<(usize, usize, u64, u32)> = BTreeSet::new();
    let mut reoffered: BTreeSet<usize> = BTreeSet::new();
    let mut restarted_observed = 0u64;
    let mut dups = 0u64;
    let mut failures = 0u64;
    let mut complete = false;
    let mut stop = false;
    let deadline = Instant::now() + Duration::from_secs(180);

    while !stop {
        if Instant::now() > deadline {
            return Err(format!(
                "swarm child {me} timed out at {}/{expected_in} packets",
                seen.len()
            ));
        }
        while let Ok(line) = rx.try_recv() {
            if line == "STOP" {
                stop = true;
            } else if let Some(rest) = line.strip_prefix("PEER ") {
                apply_peer(&mut node, c0, rest)?;
            }
        }
        if stop {
            break;
        }
        let mut progressed = false;
        for (n, f) in feeders.iter_mut() {
            f.pump(|pkt| node.try_send(NodeId::new(*n), pkt));
        }
        node.poll_round();
        while let Some((dst, d)) = node.next_delivery() {
            let key = (d.src.index(), dst.index(), d.user.msg_id, d.user.pkt_index);
            if seen.insert(key) {
                log.entry((key.0, key.1)).or_default().push((key.2, key.3));
                progressed = true;
            } else {
                dups += 1;
            }
        }
        failures += node.take_failures().len() as u64;
        // Kill-mode re-offer: a restarted peer process lost every packet
        // its dead incarnation had accepted, so the first Restarted
        // observation for a process triggers a one-shot re-offer of all
        // frames destined to it (receivers deduplicate) — the same
        // protocol the respawned child itself runs by re-playing its plan.
        for (_, ev) in node.take_peer_events() {
            if let PeerEvent::Restarted { peer, .. } = ev {
                restarted_observed += 1;
                let kproc = owner(peer.index());
                if opts.kill && kproc != me && reoffered.insert(kproc) {
                    let mut filtered = plan.clone();
                    for q in &mut filtered.sends {
                        q.retain(|p| owner(p.dst.index()) == kproc);
                    }
                    for n in hosted.clone() {
                        if !filtered.sends[n].is_empty() {
                            feeders.push((n, PlanFeeder::new(&filtered, n)));
                        }
                    }
                }
            }
        }
        if !complete
            && seen.len() as u64 == expected_in
            && feeders.iter().all(|(_, f)| f.done())
            && node.is_idle()
        {
            complete = true;
            emit(&format!("PROG {}", seen.len()));
            emit("COMPLETE");
        }
        if node.stats().rounds.is_multiple_of(1024) {
            emit(&format!("PROG {}", seen.len()));
        }
        if !progressed {
            std::thread::yield_now();
        }
    }

    for ((src, dst), order) in &log {
        for (msg, pkt) in order {
            emit(&format!("LOG {src} {dst} {msg} {pkt}"));
        }
    }
    let stats = node.stats().clone();
    let udp = node.carrier_mut(c0);
    let error_detail = udp.take_error().map(|e| e.to_string()).unwrap_or_default();
    let stats_json = Json::obj([
        ("proc", Json::u64(me as u64)),
        ("epoch", Json::u64(u64::from(opts.epoch))),
        ("expected_in", Json::u64(expected_in)),
        ("unique", Json::u64(seen.len() as u64)),
        ("dups", Json::u64(dups)),
        ("failures", Json::u64(failures)),
        ("restarted_observed", Json::u64(restarted_observed)),
        ("rounds", Json::u64(stats.rounds)),
        ("frames_in", Json::u64(stats.frames_in)),
        ("frames_out", Json::u64(stats.frames_out)),
        ("local_frames", Json::u64(stats.local_frames)),
        ("unroutable", Json::u64(stats.unroutable)),
        ("foreign", Json::u64(stats.foreign)),
        ("dropped_down", Json::u64(stats.dropped_down)),
        ("refused", Json::u64(udp.refused())),
        ("oversize", Json::u64(udp.oversize())),
        ("unknown_peer", Json::u64(udp.unknown_peer())),
        ("send_errors", Json::u64(udp.send_errors())),
        ("transport_errors", Json::u64(udp.transport_errors())),
        ("dropped_errors", Json::u64(udp.dropped_errors())),
        ("transport_error_detail", Json::str(error_detail)),
    ]);
    emit(&format!("STATS {}", stats_json.render()));
    emit("DONE");
    Ok(())
}

// ---------------------------------------------------------------------------
// swarm parent
// ---------------------------------------------------------------------------

enum FromChild {
    Line(String),
    Eof,
}

struct Slot {
    child: Child,
    stdin: ChildStdin,
    gen: u64,
    addr: Option<String>,
    complete: bool,
    prog: u64,
    epoch: u32,
    log_lines: Vec<(usize, usize, u64, u32)>,
    stats: Option<Json>,
    done: bool,
}

fn attach_reader(
    tx: &mpsc::Sender<(usize, u64, FromChild)>,
    slot: usize,
    gen: u64,
    stdout: ChildStdout,
) {
    let tx = tx.clone();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if tx.send((slot, gen, FromChild::Line(line))).is_err() {
                return;
            }
        }
        let _ = tx.send((slot, gen, FromChild::Eof));
    });
}

fn spawn_child(
    exe: &std::path::Path,
    scale: Scale,
    seed: u64,
    opts: &NodeOpts,
    proc: usize,
    epoch: u32,
) -> Result<(Child, ChildStdin, ChildStdout), String> {
    let mut cmd = Command::new(exe);
    cmd.arg("node:serve")
        .arg("--swarm-child")
        .arg(format!("--proc={proc}"))
        .arg(format!("--procs={}", opts.procs))
        .arg(format!("--per-proc={}", opts.per_proc))
        .arg(format!("--workload={}", opts.workload.label()))
        .arg(format!("--messages={}", opts.messages))
        .arg(format!("--packets={}", opts.packets))
        .arg(format!("--shards={}", opts.shards))
        .arg(format!("--batch={}", opts.batch))
        .arg(format!("--epoch={epoch}"))
        .arg("--seed")
        .arg(seed.to_string())
        .arg(scale_flag(scale));
    if opts.kill {
        cmd.arg("--kill");
    }
    if !opts.bulk {
        cmd.arg("--scalar");
    }
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn swarm child {proc}: {e}"))?;
    let stdin = child.stdin.take().ok_or("child stdin unavailable")?;
    let stdout = child.stdout.take().ok_or("child stdout unavailable")?;
    Ok((child, stdin, stdout))
}

fn send_line(slot: &mut Slot, line: &str) {
    // A write failure means the child died; the event loop will see the
    // EOF and report it with context, so the error is not lost here.
    let _ = writeln!(slot.stdin, "{line}");
    let _ = slot.stdin.flush();
}

fn stat(slot: &Slot, key: &str) -> u64 {
    slot.stats
        .as_ref()
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// What `node:swarm` produced.
#[derive(Debug)]
pub struct SwarmReport {
    /// Per-process counter table.
    pub table: Table,
    /// One-line verdict (parity or recovery).
    pub verdict: String,
    /// Every gate held.
    pub ok: bool,
    /// Machine-readable report for `--metrics-out`.
    pub json: Json,
}

#[derive(PartialEq)]
enum Phase {
    Ports,
    Run,
    Drain,
}

/// Runs the multi-process swarm; see the module docs for the protocol and
/// the clean-mode (order parity) vs `--kill` (completeness + recovery)
/// gates.
pub fn run_swarm(scale: Scale, seed: u64, extra: &[String]) -> Result<SwarmReport, String> {
    let opts = parse_opts(scale, extra)?;
    let total = opts.procs * opts.per_proc;
    let plan = build_plan(&opts, scale, seed, total);
    let expected = plan.expected_log();
    let exe = std::env::current_exe().map_err(|e| format!("no current exe: {e}"))?;
    let victim = opts.procs - 1;

    let (tx, rx) = mpsc::channel::<(usize, u64, FromChild)>();
    let mut slots: Vec<Slot> = Vec::with_capacity(opts.procs);
    for i in 0..opts.procs {
        let (child, stdin, stdout) = spawn_child(&exe, scale, seed, &opts, i, 0)?;
        attach_reader(&tx, i, 0, stdout);
        slots.push(Slot {
            child,
            stdin,
            gen: 0,
            addr: None,
            complete: false,
            prog: 0,
            epoch: 0,
            log_lines: Vec::new(),
            stats: None,
            done: false,
        });
    }
    let cleanup = |slots: &mut Vec<Slot>| {
        for s in slots.iter_mut() {
            let _ = s.child.kill();
            let _ = s.child.wait();
        }
    };

    let mut phase = Phase::Ports;
    let mut killed = false;
    let deadline = Instant::now() + Duration::from_secs(240);
    loop {
        if Instant::now() > deadline {
            cleanup(&mut slots);
            return Err("swarm parent timed out".into());
        }
        // Kill-one-process recovery drill: once the victim shows progress,
        // SIGKILL it and respawn the same slice with the next epoch.
        if opts.kill && !killed && phase == Phase::Run {
            let trigger = slots[victim].prog >= 1 || slots[victim].complete;
            if trigger {
                killed = true;
                let s = &mut slots[victim];
                s.gen += 1;
                let _ = s.child.kill();
                let _ = s.child.wait();
                let (child, stdin, stdout) = spawn_child(&exe, scale, seed, &opts, victim, 1)?;
                attach_reader(&tx, victim, s.gen, stdout);
                s.child = child;
                s.stdin = stdin;
                s.addr = None;
                s.complete = false;
                s.prog = 0;
                s.epoch = 1;
            }
        }
        match phase {
            Phase::Ports => {
                if slots.iter().all(|s| s.addr.is_some()) {
                    let peers: Vec<(usize, String)> = slots
                        .iter()
                        .enumerate()
                        .map(|(j, s)| (j, s.addr.clone().unwrap_or_default()))
                        .collect();
                    for (i, slot) in slots.iter_mut().enumerate() {
                        for (j, addr) in &peers {
                            if *j != i {
                                send_line(slot, &format!("PEER {j} {addr}"));
                            }
                        }
                        send_line(slot, "GO");
                    }
                    phase = Phase::Run;
                    continue;
                }
            }
            Phase::Run => {
                let all_complete = slots.iter().all(|s| s.complete) && (!opts.kill || killed);
                if all_complete {
                    for s in slots.iter_mut() {
                        send_line(s, "STOP");
                    }
                    phase = Phase::Drain;
                    continue;
                }
            }
            Phase::Drain => {
                if slots.iter().all(|s| s.done) {
                    break;
                }
            }
        }
        let (i, gen, msg) = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                cleanup(&mut slots);
                return Err("all swarm reader threads vanished".into());
            }
        };
        if gen != slots[i].gen {
            continue; // stale line from a killed incarnation
        }
        let line = match msg {
            FromChild::Line(l) => l,
            FromChild::Eof => {
                if slots[i].done {
                    continue;
                }
                cleanup(&mut slots);
                return Err(format!("swarm child {i} exited unexpectedly"));
            }
        };
        let mut it = line.split_whitespace();
        match it.next() {
            Some("PORT") => {
                let addr = it.next().unwrap_or_default().to_string();
                slots[i].addr = Some(addr.clone());
                if phase == Phase::Run {
                    // A respawned child joins late: give it the full peer
                    // map, start it, and update everyone else's view.
                    let peers: Vec<(usize, String)> = slots
                        .iter()
                        .enumerate()
                        .filter(|(j, s)| *j != i && s.addr.is_some())
                        .map(|(j, s)| (j, s.addr.clone().unwrap_or_default()))
                        .collect();
                    for (j, a) in &peers {
                        send_line(&mut slots[i], &format!("PEER {j} {a}"));
                    }
                    send_line(&mut slots[i], "GO");
                    for (j, slot) in slots.iter_mut().enumerate() {
                        if j != i {
                            send_line(slot, &format!("PEER {i} {addr}"));
                        }
                    }
                }
            }
            Some("PROG") => {
                slots[i].prog = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            Some("COMPLETE") => slots[i].complete = true,
            Some("LOG") => {
                let mut p = || it.next().and_then(|v| v.parse::<u64>().ok());
                match (p(), p(), p(), p()) {
                    (Some(src), Some(dst), Some(msg_id), Some(pkt)) => {
                        slots[i]
                            .log_lines
                            .push((src as usize, dst as usize, msg_id, pkt as u32));
                    }
                    _ => {
                        cleanup(&mut slots);
                        return Err(format!("swarm child {i}: malformed LOG line '{line}'"));
                    }
                }
            }
            Some("STATS") => {
                let raw = line.trim_start_matches("STATS ").to_string();
                slots[i].stats = json::parse(&raw).ok();
            }
            Some("DONE") => slots[i].done = true,
            _ => {
                cleanup(&mut slots);
                return Err(format!("swarm child {i}: unexpected line '{line}'"));
            }
        }
    }
    for s in slots.iter_mut() {
        let _ = s.child.wait();
    }

    // Aggregate the per-destination delivery logs (destinations are
    // partitioned over children, so keys never collide).
    let mut agg = DeliveryLog::new();
    for s in &slots {
        for &(src, dst, msg_id, pkt) in &s.log_lines {
            agg.entry((src, dst)).or_default().push((msg_id, pkt));
        }
    }
    let unique: u64 = slots.iter().map(|s| stat(s, "unique")).sum();
    let dups: u64 = slots.iter().map(|s| stat(s, "dups")).sum();
    let failures: u64 = slots.iter().map(|s| stat(s, "failures")).sum();
    let transport_errors: u64 = slots.iter().map(|s| stat(s, "transport_errors")).sum();
    let unroutable: u64 = slots.iter().map(|s| stat(s, "unroutable")).sum();
    let foreign: u64 = slots.iter().map(|s| stat(s, "foreign")).sum();
    let restarted_observed: u64 = slots.iter().map(|s| stat(s, "restarted_observed")).sum();
    let hygiene = failures == 0 && transport_errors == 0 && unroutable == 0 && foreign == 0;

    let (ok, verdict) = if opts.kill {
        let want: BTreeSet<(usize, usize, u64, u32)> = expected
            .iter()
            .flat_map(|(&(s, d), v)| v.iter().map(move |&(m, p)| (s, d, m, p)))
            .collect();
        let got: BTreeSet<(usize, usize, u64, u32)> = agg
            .iter()
            .flat_map(|(&(s, d), v)| v.iter().map(move |&(m, p)| (s, d, m, p)))
            .collect();
        let coverage = want == got;
        let victim_epoch = slots[victim].epoch == 1 && stat(&slots[victim], "epoch") == 1;
        let ok = coverage && victim_epoch && restarted_observed > 0 && hygiene;
        let verdict = if ok {
            format!(
                "node:swarm recovery OK: {} packets covered after killing process {victim} \
                 (epoch 1, {restarted_observed} restart observations, {dups} dups absorbed)",
                want.len()
            )
        } else {
            format!(
                "node:swarm recovery FAILED: coverage {coverage}, victim epoch ok {victim_epoch}, \
                 restarts observed {restarted_observed}, failures {failures}, \
                 transport errors {transport_errors}, unroutable {unroutable}, foreign {foreign}"
            )
        };
        (ok, verdict)
    } else {
        let sim = run_sim_reference(&plan, 50_000_000);
        let parity = agg == sim && sim == expected;
        let ok = parity && dups == 0 && hygiene;
        let verdict = if ok {
            format!(
                "node:swarm parity OK: {} packets, delivery order byte-identical to the \
                 flit-level sim (seed {seed})",
                plan.total_packets()
            )
        } else {
            format!(
                "node:swarm parity FAILED: sim parity {parity}, dups {dups}, \
                 failures {failures}, transport errors {transport_errors}, \
                 unroutable {unroutable}, foreign {foreign}"
            )
        };
        (ok, verdict)
    };

    let mut table = Table::new(
        format!(
            "nifdy-node: swarm, {} procs x {} endpoints = {} nodes, {} workload ({}, seed {seed}{})",
            opts.procs,
            opts.per_proc,
            total,
            opts.workload.label(),
            if plan.want_bulk { "bulk" } else { "scalar" },
            if opts.kill { ", kill drill" } else { "" },
        ),
        vec![
            "proc".into(),
            "epoch".into(),
            "unique".into(),
            "dups".into(),
            "restarts seen".into(),
            "frames in".into(),
            "frames out".into(),
            "local".into(),
            "dropped down".into(),
            "refused".into(),
        ],
    );
    for (i, s) in slots.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            stat(s, "epoch").to_string(),
            stat(s, "unique").to_string(),
            stat(s, "dups").to_string(),
            stat(s, "restarted_observed").to_string(),
            stat(s, "frames_in").to_string(),
            stat(s, "frames_out").to_string(),
            stat(s, "local_frames").to_string(),
            stat(s, "dropped_down").to_string(),
            stat(s, "refused").to_string(),
        ]);
    }

    let children = Json::Arr(
        slots
            .iter()
            .map(|s| s.stats.clone().unwrap_or(Json::obj([])))
            .collect(),
    );
    let json = Json::obj([
        ("experiment", Json::str("node:swarm")),
        ("seed", Json::u64(seed)),
        ("procs", Json::u64(opts.procs as u64)),
        ("per_proc", Json::u64(opts.per_proc as u64)),
        ("workload", Json::str(opts.workload.label())),
        ("kill", Json::u64(u64::from(opts.kill))),
        ("total_packets", Json::u64(plan.total_packets())),
        ("unique_delivered", Json::u64(unique)),
        ("duplicates", Json::u64(dups)),
        ("failures", Json::u64(failures)),
        ("transport_errors", Json::u64(transport_errors)),
        ("restarted_observed", Json::u64(restarted_observed)),
        ("ok", Json::u64(u64::from(ok))),
        ("children", children),
    ]);
    Ok(SwarmReport {
        table,
        verdict,
        ok,
        json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_scale_down() {
        let o = parse_opts(Scale::Smoke, &[]).expect("defaults parse");
        assert_eq!(o.nodes, 64);
        assert_eq!(o.procs, 4);
        assert!(o.bulk);
        let full = parse_opts(Scale::Full, &[]).expect("full defaults");
        assert_eq!(full.nodes, 1024);
        assert_eq!(full.per_proc, 64);
    }

    #[test]
    fn flags_override_defaults() {
        let o = parse_opts(
            Scale::Smoke,
            &s(&[
                "--procs=2",
                "--per-proc=8",
                "--workload=em3d",
                "--shards=3",
                "--scalar",
            ]),
        )
        .expect("flags parse");
        assert_eq!(o.procs, 2);
        assert_eq!(o.per_proc, 8);
        assert_eq!(o.workload, WorkloadKind::Em3d);
        assert_eq!(o.shards, 3);
        assert!(!o.bulk);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_opts(Scale::Smoke, &s(&["--bogus=1"])).is_err());
        assert!(parse_opts(Scale::Smoke, &s(&["--procs=1"])).is_err());
        assert!(parse_opts(Scale::Smoke, &s(&["--workload=mystery"])).is_err());
        assert!(parse_opts(Scale::Smoke, &s(&["--kill", "--workload=em3d"])).is_err());
        assert!(parse_opts(Scale::Smoke, &s(&["--messages"])).is_err());
    }

    #[test]
    fn kill_mode_forces_scalar_traffic() {
        let mut o = parse_opts(Scale::Smoke, &s(&["--kill"])).expect("kill parses");
        o.bulk = true;
        let plan = build_plan(&o, Scale::Smoke, 1, 8);
        assert!(
            !plan.want_bulk,
            "crash recovery is defined for scalar flows"
        );
        o.kill = false;
        let plan = build_plan(&o, Scale::Smoke, 1, 8);
        assert!(plan.want_bulk);
    }

    #[test]
    fn em3d_swarm_plan_is_small_but_nonempty() {
        let o = parse_opts(
            Scale::Smoke,
            &s(&["--workload=em3d", "--procs=2", "--per-proc=4"]),
        )
        .expect("em3d parses");
        let plan = build_plan(&o, Scale::Smoke, 3, 8);
        assert!(plan.total_packets() > 0);
        assert!(plan.total_packets() < 10_000, "smoke plan stays small");
    }

    #[test]
    fn serve_smoke_reports_throughput_and_order() {
        let outcome = run_serve(
            Scale::Smoke,
            2,
            &s(&["--nodes=12", "--shards=4", "--messages=1", "--packets=2"]),
        )
        .expect("serve runs");
        let ServeOutcome::Report(r) = outcome else {
            panic!("not a child run");
        };
        assert!(r.order_ok, "delivery order matches the plan");
        assert!(r.frames_per_sec > 0.0);
        assert!(r.ok());
    }
}
