//! Empirical NIFDY parameter sweep — how the paper found its Table 3
//! values: "to learn which NIFDY parameters were best for which networks
//! ... we ran many simulations for each network" under both synthetic
//! patterns.

use nifdy::NifdyConfig;
use nifdy_traffic::{NetworkKind, NicChoice};

use crate::exec::{self, Jobs};
use crate::fig23::run_cell;
use crate::report::Table;
use crate::scale::Scale;

/// One sweep sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// `(O, B, D, W)`.
    pub params: (u8, u8, u8, u8),
    /// Packets delivered under heavy traffic.
    pub heavy: u64,
    /// Packets delivered under light traffic.
    pub light: u64,
    /// Combined score (geometric mean of the two).
    pub score: f64,
}

/// Grid values swept.
pub const O_VALUES: [u8; 3] = [2, 4, 8];
/// Grid values swept.
pub const B_VALUES: [u8; 3] = [4, 8, 16];
/// Grid values swept.
pub const W_VALUES: [u8; 3] = [2, 4, 8];

/// Sweeps the parameter grid for one network, scoring each setting by the
/// geometric mean of heavy- and light-traffic throughput (the paper chose
/// parameters "to give the best average performance with both test traffic
/// patterns").
pub fn run(kind: NetworkKind, scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<SweepPoint>) {
    // Every grid point sees the same traffic: one derived seed for the
    // whole sweep, so settings are compared like-for-like.
    let cell = exec::cell_seed(&format!("sweep:{}", kind.label()), 0, seed);
    let mut grid = Vec::new();
    for o in O_VALUES {
        for b in B_VALUES {
            for d in [0u8, 1] {
                for w in W_VALUES {
                    if d == 0 && w != W_VALUES[0] {
                        continue; // W is irrelevant without dialogs
                    }
                    grid.push((o, b, d, w));
                }
            }
        }
    }
    let mut points = exec::map(jobs, grid, |(o, b, d, w), _| {
        let cfg = NifdyConfig::builder()
            .opt_entries(o)
            .pool_entries(b)
            .max_dialogs(d)
            .window(w)
            .build()
            .expect("swept grid values are valid");
        let choice = NicChoice::Nifdy(cfg);
        let heavy = run_cell(kind, &choice, true, scale, cell);
        let light = run_cell(kind, &choice, false, scale, cell);
        let score = ((heavy as f64) * (light as f64)).sqrt();
        SweepPoint {
            params: (o, b, d, w),
            heavy,
            light,
            score,
        }
    });
    points.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut table = Table::new(
        format!("Parameter sweep on {} (best first)", kind.label()),
        vec![
            "O".into(),
            "B".into(),
            "D".into(),
            "W".into(),
            "heavy".into(),
            "light".into(),
            "score".into(),
        ],
    );
    for p in points.iter().take(12) {
        table.row(vec![
            p.params.0.to_string(),
            p.params.1.to_string(),
            p.params.2.to_string(),
            p.params.3.to_string(),
            p.heavy.to_string(),
            p.light.to_string(),
            format!("{:.0}", p.score),
        ]);
    }
    (table, points)
}

/// Parses a network label as used on the CLI.
pub fn kind_from_label(label: &str) -> Option<NetworkKind> {
    NetworkKind::ALL.into_iter().find(|k| k.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in NetworkKind::ALL {
            assert_eq!(kind_from_label(kind.label()), Some(kind));
        }
        assert_eq!(kind_from_label("nope"), None);
    }
}
