//! Experiment harness: regenerates every table and figure of the NIFDY
//! paper's evaluation (§4) over the fabrics, protocol, and workloads of the
//! sibling crates.
//!
//! Each `figN` module runs one figure and returns both a rendered
//! [`Table`] (the same rows/series the paper reports) and typed data points
//! for programmatic use. The `nifdy-experiments` binary dispatches on a
//! figure name:
//!
//! ```text
//! nifdy-experiments fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table3|all [--full|--quick|--smoke]
//! ```
//!
//! Cells within a figure are independent simulations; every runner takes a
//! [`Jobs`] worker budget (the binary's `--jobs` flag) and fans its cells
//! across that many threads via [`exec::map`], reassembling tables in
//! canonical order so the output is byte-identical at any job count.
//!
//! The binary's `--engine {cycle,event}` flag selects the stepping engine
//! ([`set_engine`]) for every cell: `event` runs the skip-ahead kernel,
//! which produces byte-identical tables (the equivalence suite in
//! `nifdy-traffic` proves it) while stepping only the cycles where
//! something can happen.
//!
//! # Examples
//!
//! ```
//! use nifdy_harness::{table3, Jobs, Scale};
//!
//! let (table, profiles) = table3::run(1, Jobs::serial());
//! assert_eq!(profiles.len(), 8);
//! println!("{table}");
//! # let _ = Scale::Smoke;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze_cmd;
pub mod exec;
pub mod ext;
pub mod ext_lossy;
pub mod fig23;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig78;
pub mod fig9;
pub mod node_cmd;
mod report;
mod scale;
pub mod sweep;
pub mod table3;
pub mod trace_guard;
pub mod wire_cmd;

pub use exec::{cell_seed, Jobs};
pub use nifdy_traffic::{Engine, NetworkKind};
pub use report::{fault_summary, heat_map, percentile_table, Table};
pub use scale::Scale;

use std::sync::atomic::{AtomicU8, Ordering};

use nifdy_traffic::Scenario;

/// Process-wide stepping-engine selection (the `--engine` flag). Workers
/// read it through [`scenario`], so one `set_engine` call before running
/// covers every cell of every figure.
static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Selects the stepping engine for all subsequently built scenarios.
pub fn set_engine(engine: Engine) {
    let v = match engine {
        Engine::Cycle => 0,
        Engine::Event => 1,
    };
    ENGINE.store(v, Ordering::Relaxed);
}

/// The engine selected by [`set_engine`] (default [`Engine::Cycle`]).
pub fn engine() -> Engine {
    if ENGINE.load(Ordering::Relaxed) == 1 {
        Engine::Event
    } else {
        Engine::Cycle
    }
}

/// A [`Scenario`] on `kind` with the harness-wide engine applied; every
/// figure runner builds its cells through this.
pub fn scenario(kind: NetworkKind) -> Scenario {
    Scenario::new(kind).engine(engine())
}
