//! Experiment harness: regenerates every table and figure of the NIFDY
//! paper's evaluation (§4) over the fabrics, protocol, and workloads of the
//! sibling crates.
//!
//! Each `figN` module runs one figure and returns both a rendered
//! [`Table`] (the same rows/series the paper reports) and typed data points
//! for programmatic use. The `nifdy-experiments` binary dispatches on a
//! figure name:
//!
//! ```text
//! nifdy-experiments fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table3|all [--full|--quick|--smoke]
//! ```
//!
//! Cells within a figure are independent simulations; every runner takes a
//! [`Jobs`] worker budget (the binary's `--jobs` flag) and fans its cells
//! across that many threads via [`exec::map`], reassembling tables in
//! canonical order so the output is byte-identical at any job count.
//!
//! # Examples
//!
//! ```
//! use nifdy_harness::{table3, Jobs, Scale};
//!
//! let (table, profiles) = table3::run(1, Jobs::serial());
//! assert_eq!(profiles.len(), 8);
//! println!("{table}");
//! # let _ = Scale::Smoke;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze_cmd;
pub mod exec;
pub mod ext;
pub mod ext_lossy;
pub mod fig23;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig78;
pub mod fig9;
mod report;
mod scale;
pub mod sweep;
pub mod table3;
pub mod trace_guard;
pub mod wire_cmd;

pub use exec::{cell_seed, Jobs};
pub use nifdy_traffic::NetworkKind;
pub use report::{fault_summary, heat_map, percentile_table, Table};
pub use scale::Scale;
