//! Plain-text rendering of experiment results, matching the rows/series the
//! paper's figures report.

use std::fmt;

use nifdy_net::FabricStats;
use nifdy_trace::MetricsRegistry;

/// A rendered result table.
///
/// # Examples
///
/// ```
/// use nifdy_harness::Table;
///
/// let mut t = Table::new("demo", vec!["net".into(), "pkts".into()]);
/// t.row(vec!["mesh".into(), "123".into()]);
/// let s = t.to_string();
/// assert!(s.contains("mesh") && s.contains("123"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the headers.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Renders the fabric's packet-loss accounting — the legacy uniform lottery
/// plus every fault-plane cause — as a table, for lossy-fabric experiment
/// reports.
///
/// # Examples
///
/// ```
/// use nifdy_harness::fault_summary;
/// use nifdy_net::FabricStats;
///
/// let t = fault_summary("clean run", &FabricStats::default());
/// assert!(t.to_string().contains("burst"));
/// ```
pub fn fault_summary(title: &str, stats: &FabricStats) -> Table {
    let mut t = Table::new(
        format!("{title}: packet drops by cause"),
        vec!["cause".into(), "drops".into()],
    );
    for (cause, counter) in [
        ("uniform lottery", &stats.dropped_uniform),
        ("data-lane loss", &stats.dropped_data),
        ("ack-lane loss", &stats.dropped_ack),
        ("burst (Gilbert-Elliott)", &stats.dropped_burst),
        ("link down", &stats.dropped_link_down),
        ("targeted", &stats.dropped_targeted),
    ] {
        t.row(vec![cause.into(), counter.get().to_string()]);
    }
    t.row(vec!["total".into(), stats.dropped.get().to_string()]);
    t
}

/// Renders every latency histogram of a metrics registry as a percentile
/// table (count, p50/p90/p99/p99.9, max), for experiment reports.
///
/// # Examples
///
/// ```
/// use nifdy_harness::percentile_table;
/// use nifdy_trace::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// for v in 1..=1000 {
///     reg.record("latency.cycles", v);
/// }
/// let t = percentile_table("demo", &reg);
/// assert!(t.to_string().contains("latency.cycles"));
/// ```
pub fn percentile_table(title: &str, registry: &MetricsRegistry) -> Table {
    let mut t = Table::new(
        format!("{title}: latency percentiles (cycles)"),
        vec![
            "histogram".into(),
            "count".into(),
            "p50".into(),
            "p90".into(),
            "p99".into(),
            "p99.9".into(),
            "max".into(),
        ],
    );
    for row in registry.percentile_rows() {
        t.row(vec![
            row.name,
            row.count.to_string(),
            row.p50.to_string(),
            row.p90.to_string(),
            row.p99.to_string(),
            row.p999.to_string(),
            row.max.to_string(),
        ]);
    }
    t
}

/// Renders a per-receiver time series as an ASCII heat map (the Figure 5
/// style: time on the horizontal axis, receivers on the vertical axis,
/// darker marks for more pending packets).
///
/// # Examples
///
/// ```
/// use nifdy_harness::heat_map;
///
/// let series = vec![vec![0.0, 3.0, 25.0], vec![1.0, 0.0, 0.0]];
/// let map = heat_map("demo", &series);
/// assert!(map.contains("r00"));
/// ```
pub fn heat_map(title: &str, per_receiver: &[Vec<f64>]) -> String {
    const SHADES: [char; 6] = ['.', '1', '2', '4', '8', '#'];
    let mut out = format!("== {title} == (rows: receivers, cols: time; '#' = 20+ pending)\n");
    for (r, series) in per_receiver.iter().enumerate() {
        out.push_str(&format!("r{r:02} "));
        for &v in series {
            let shade = match v as u32 {
                0 => 0,
                1 => 1,
                2..=3 => 2,
                4..=7 => 3,
                8..=19 => 4,
                _ => 5,
            };
            out.push(SHADES[shade]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new("t", vec!["a".into(), "long-header".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.row(vec!["x".into(), "extra".into()]);
    }

    #[test]
    fn heat_map_scales_shades() {
        let map = heat_map("x", &[vec![0.0, 1.0, 2.0, 5.0, 10.0, 30.0]]);
        let row = map.lines().nth(1).unwrap();
        assert!(row.contains('.') && row.contains('#'));
    }
}
