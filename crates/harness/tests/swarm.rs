//! End-to-end swarm tests: drive the `nifdy-experiments` binary's `node:*`
//! targets as real subprocesses, exactly the way CI and a user would. The
//! swarm parent in turn re-executes the same binary as `--swarm-child`
//! workers, so each test here exercises the full stdio control protocol,
//! real UDP datagrams between processes, and the parity/recovery gates.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nifdy-experiments"))
}

fn run_ok(args: &[&str]) -> String {
    let out = experiments().args(args).output().expect("spawn binary");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "{args:?} failed (status {:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    stdout
}

#[test]
fn serve_single_daemon_reports_in_order_delivery() {
    let stdout = run_ok(&[
        "node:serve",
        "--smoke",
        "--seed",
        "7",
        "--nodes=12",
        "--shards=4",
        "--messages=1",
        "--packets=2",
        "--parity",
    ]);
    // The order column reports "plan+sim" when both the send-order gate and
    // the --parity flit-level comparison pass.
    assert!(
        stdout.contains("plan+sim"),
        "serve summary missing order verdict:\n{stdout}"
    );
}

#[test]
fn swarm_clean_run_matches_sim_delivery_order() {
    let stdout = run_ok(&[
        "node:swarm",
        "--smoke",
        "--seed",
        "5",
        "--procs=2",
        "--per-proc=4",
        "--messages=1",
        "--packets=2",
    ]);
    assert!(
        stdout.contains("parity OK"),
        "swarm did not report parity:\n{stdout}"
    );
}

#[test]
fn swarm_survives_killing_one_process() {
    let stdout = run_ok(&[
        "node:swarm",
        "--smoke",
        "--seed",
        "11",
        "--procs=2",
        "--per-proc=4",
        "--messages=1",
        "--packets=2",
        "--kill",
    ]);
    assert!(
        stdout.contains("recovery OK"),
        "swarm did not report recovery:\n{stdout}"
    );
}

#[test]
fn bad_node_flags_are_rejected() {
    let out = experiments()
        .args(["node:swarm", "--smoke", "--procs=1"])
        .output()
        .expect("spawn binary");
    assert!(!out.status.success(), "--procs=1 should be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--procs"),
        "error should name the flag:\n{stderr}"
    );
}
