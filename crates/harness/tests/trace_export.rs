//! End-to-end acceptance of the flight recorder: run the lossy sweep's
//! traced cell (8×8 mesh, 10% bursty loss, bulk mode, adaptive RTO) and
//! validate the exported artifacts — the Chrome trace must round-trip
//! through the strict JSON parser with per-NIC tracks, balanced bulk-dialog
//! async spans, and cause-tagged drop instants; the metrics registry must
//! carry latency percentiles and occupancy gauges.

#![cfg(feature = "trace")]

use std::collections::HashMap;

use nifdy_harness::{ext_lossy, percentile_table, Scale};
use nifdy_trace::export::{to_chrome_trace, to_jsonl};
use nifdy_trace::json::{parse, Json};

#[test]
fn traced_lossy_cell_exports_a_valid_chrome_trace() {
    let (events, registry, point) = ext_lossy::run_traced_cell(Scale::Smoke, 7);
    assert!(point.delivered > 0, "cell delivered nothing");
    assert!(!events.is_empty(), "recorder saw nothing");

    // The snapshot is time-ordered with a global tiebreak sequence.
    assert!(
        events
            .windows(2)
            .all(|w| (w[0].at.as_u64(), w[0].seq) <= (w[1].at.as_u64(), w[1].seq)),
        "snapshot must be time-ordered"
    );

    let text = to_chrome_trace(&events);
    let doc = parse(&text).expect("chrome trace must be well-formed JSON");
    let trace_events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents array");
    assert_eq!(
        doc.get("displayTimeUnit").unwrap().as_str(),
        Some("ns"),
        "display unit pinned"
    );

    let ph = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();

    // Per-NIC tracks: a thread_name metadata record for every node that
    // appears in the event stream.
    let tracks: Vec<&Json> = trace_events.iter().filter(|e| ph(e) == "M").collect();
    assert!(!tracks.is_empty(), "no metadata tracks");
    for t in &tracks {
        assert_eq!(t.get("name").unwrap().as_str(), Some("thread_name"));
        let label = t
            .get("args")
            .unwrap()
            .get("name")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(label.starts_with("nic "), "track label {label}");
    }

    // Bulk-dialog async spans: every begin has a matching end with the same
    // id, and the cell (bulk mode) produced at least one dialog.
    let mut span_balance: HashMap<String, i64> = HashMap::new();
    let mut begins = 0u64;
    for e in trace_events {
        let p = ph(e);
        if p == "b" || p == "e" {
            assert_eq!(e.get("cat").unwrap().as_str(), Some("bulk"));
            let id = e.get("id").unwrap().as_str().unwrap().to_string();
            *span_balance.entry(id).or_default() += if p == "b" { 1 } else { -1 };
            if p == "b" {
                begins += 1;
            }
        }
    }
    assert!(begins > 0, "bulk cell must open at least one dialog span");
    for (id, balance) in &span_balance {
        assert_eq!(*balance, 0, "span {id} unbalanced");
    }

    // Drop instants carry their cause; at 10% bursty loss drops are certain.
    let drops: Vec<&Json> = trace_events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("drop"))
        .collect();
    assert!(!drops.is_empty(), "10% loss produced no drop events");
    for d in &drops {
        let cause = d.get("args").unwrap().get("cause").unwrap().as_str();
        assert!(cause.is_some(), "drop without a cause");
        assert_eq!(d.get("ph").unwrap().as_str(), Some("i"));
    }

    // JSONL export: every line parses, one line per event.
    let jsonl = to_jsonl(&events);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (i, line) in lines.iter().enumerate() {
        let rec = parse(line).unwrap_or_else(|e| panic!("line {i} unparseable: {e:?}"));
        assert!(rec.get("ev").is_some(), "line {i} missing ev");
    }

    // The registry carries delivery-latency percentiles and gauges.
    let rows = registry.percentile_rows();
    assert!(
        rows.iter().any(|r| r.name == "delivery_latency.cycles"),
        "missing delivery-latency histogram: {rows:?}"
    );
    let table = percentile_table("traced cell", &registry).to_string();
    assert!(table.contains("p99.9"), "{table}");
    let metrics = registry.to_json().render();
    let parsed = parse(&metrics).expect("metrics JSON well-formed");
    assert!(parsed
        .get("gauges")
        .unwrap()
        .get("occupancy.opt.max")
        .is_some());
}
