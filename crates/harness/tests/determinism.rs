//! The parallel executor's contract: tables are byte-identical at any job
//! count, because cell seeds derive from grid position (never execution
//! order) and results reassemble into canonical slots.

use nifdy_harness::{cell_seed, ext, ext_lossy, fig23, fig6, table3, Jobs, Scale};
use proptest::prelude::*;

/// Every experiment's table, rendered at one job count.
fn render_quick_suite(jobs: Jobs, seed: u64) -> String {
    let mut out = String::new();
    let (t, _) = table3::run(seed, jobs);
    out.push_str(&t.to_string());
    let (t, _) = fig23::run(true, Scale::Smoke, seed, jobs);
    out.push_str(&t.to_string());
    let (t, _) = fig23::run(false, Scale::Smoke, seed, jobs);
    out.push_str(&t.to_string());
    let (t, _) = fig6::run(Scale::Smoke, seed, jobs);
    out.push_str(&t.to_string());
    let (t, _) = ext::run_adaptive(Scale::Smoke, seed, jobs);
    out.push_str(&t.to_string());
    let (t, _) = ext_lossy::run_lossy(Scale::Smoke, seed, jobs);
    out.push_str(&t.to_string());
    out
}

#[test]
fn tables_are_byte_identical_across_job_counts() {
    let sequential = render_quick_suite(Jobs::serial(), 1);
    for jobs in [2, 4, 16] {
        let parallel = render_quick_suite(Jobs::new(jobs), 1);
        assert_eq!(sequential, parallel, "--jobs {jobs} diverged from --jobs 1");
    }
}

#[test]
fn tables_depend_on_the_base_seed() {
    // The base seed must actually reach the cells: a different base gives a
    // different (but still internally consistent) suite.
    let a = render_quick_suite(Jobs::new(4), 1);
    let b = render_quick_suite(Jobs::new(4), 2);
    assert_ne!(a, b, "base seed is not reaching the derived cell seeds");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Across a whole experiment grid — every runner name crossed with more
    /// cell indices than any real figure uses — derived seeds never collide,
    /// for any base seed.
    #[test]
    fn derived_cell_seeds_never_collide(base in any::<u64>()) {
        let experiments = [
            "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig9.coalesce", "sweep:mesh-2d", "sweep:fat-tree",
            "ext:adaptive", "ext:loadsweep", "ext:lossy",
        ];
        let mut seen = std::collections::HashMap::new();
        for exp in experiments {
            for index in 0..64u64 {
                let s = cell_seed(exp, index, base);
                if let Some(prev) = seen.insert(s, (exp, index)) {
                    panic!(
                        "seed collision: {prev:?} and {:?} both derive {s:#x} from base {base:#x}",
                        (exp, index)
                    );
                }
            }
        }
    }

    /// Derivation is base-sensitive: the same cell under different base
    /// seeds yields different streams (no accidental constant folding).
    #[test]
    fn derived_seeds_vary_with_base(a in any::<u64>(), b in any::<u64>()) {
        prop_assert!(
            a == b || cell_seed("fig2", 0, a) != cell_seed("fig2", 0, b),
            "bases {a:#x} and {b:#x} derived the same seed"
        );
    }
}
