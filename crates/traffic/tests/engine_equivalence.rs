//! Differential tests of the two stepping engines.
//!
//! The event-driven skip-ahead engine must be *observationally identical*
//! to cycle stepping: same delivery orders and timestamps, same processor
//! / interface / fabric statistics, same typed failures, same gauge
//! samples, same trace streams, same final clock — across workloads,
//! topologies, interface choices, seeds, and fault configurations. Every
//! test here builds the same simulation twice, runs one copy per engine,
//! and compares full observation records.

use std::sync::{Arc, Mutex};

use nifdy::{Delivered, DeliveryFailure, Nic, NifdyConfig, OutboundPacket};
use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, FaultConfig, GilbertElliott, LinkWindow, UserData};
use nifdy_sim::{Cycle, NodeId, Wakeup};
use nifdy_traffic::{
    Action, CoalesceConfig, Driver, Engine, NetworkKind, NicChoice, NodeWorkload, ScanConfig,
    Scenario, SoftwareModel, SyntheticConfig,
};

/// One received packet: (cycle, receiver, sender, msg_id, pkt_index).
type Delivery = (u64, usize, usize, u64, u32);

/// Wraps a workload so every reception is appended to a shared log,
/// preserving the inner workload's wakeup contract.
struct Recording {
    inner: Box<dyn NodeWorkload>,
    node: usize,
    log: Arc<Mutex<Vec<Delivery>>>,
}

impl NodeWorkload for Recording {
    fn next_action(&mut self, now: Cycle) -> Action {
        self.inner.next_action(now)
    }
    fn on_receive(&mut self, pkt: &Delivered, now: Cycle) {
        self.log.lock().unwrap().push((
            now.as_u64(),
            self.node,
            pkt.src.index(),
            pkt.user.msg_id,
            pkt.user.pkt_index,
        ));
        self.inner.on_receive(pkt, now);
    }
    fn next_event(&self, now: Cycle) -> Wakeup {
        self.inner.next_event(now)
    }
}

fn record_all(
    wls: Vec<Box<dyn NodeWorkload>>,
    log: &Arc<Mutex<Vec<Delivery>>>,
) -> Vec<Box<dyn NodeWorkload>> {
    wls.into_iter()
        .enumerate()
        .map(|(node, inner)| -> Box<dyn NodeWorkload> {
            Box::new(Recording {
                inner,
                node,
                log: Arc::clone(log),
            })
        })
        .collect()
}

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct RunRecord {
    final_now: u64,
    completed: Option<bool>,
    deliveries: Vec<Delivery>,
    proc_stats: Vec<[u64; 5]>,
    nic_stats: Vec<[u64; 16]>,
    fabric_stats: Vec<u64>,
    failures: Vec<DeliveryFailure>,
    gauges: Vec<(String, Vec<(u64, f64)>)>,
}

fn nic_counters(nic: &dyn Nic) -> [u64; 16] {
    let s = nic.stats();
    [
        s.sent.get(),
        s.sent_bulk.get(),
        s.acks_sent.get(),
        s.acks_received.get(),
        s.delivered.get(),
        s.send_rejected.get(),
        s.retransmitted.get(),
        s.duplicates_dropped.get(),
        s.dialogs_granted.get(),
        s.acks_piggybacked.get(),
        s.bulk_out_of_order.get(),
        s.dialogs_rejected.get(),
        s.delivery_failures.get(),
        s.retx_queue_overflow.get(),
        s.dialogs_torn_down.get(),
        s.dialogs_reclaimed.get(),
    ]
}

fn observe(d: &Driver, completed: Option<bool>, log: &Arc<Mutex<Vec<Delivery>>>) -> RunRecord {
    let fs = d.fabric().stats();
    let fabric_stats = vec![
        fs.injected[0].get(),
        fs.injected[1].get(),
        fs.delivered[0].get(),
        fs.delivered[1].get(),
        fs.dropped.get(),
        fs.dropped_uniform.get(),
        fs.dropped_data.get(),
        fs.dropped_ack.get(),
        fs.dropped_burst.get(),
        fs.dropped_link_down.get(),
        fs.dropped_targeted.get(),
        d.fabric().in_network() as u64,
    ];
    let gauges = d
        .metrics()
        .map(|reg| {
            [
                "occupancy.pool.max",
                "occupancy.opt.max",
                "occupancy.retx_queue.max",
                "occupancy.window.max",
                "fabric.in_flight",
            ]
            .iter()
            .filter_map(|name| {
                reg.gauge_series(name)
                    .map(|s| (name.to_string(), s.points().to_vec()))
            })
            .collect()
        })
        .unwrap_or_default();
    RunRecord {
        final_now: d.fabric().now().as_u64(),
        completed,
        deliveries: log.lock().unwrap().clone(),
        proc_stats: d
            .processors()
            .iter()
            .map(|p| {
                let s = p.stats();
                [
                    s.sent.get(),
                    s.received.get(),
                    s.empty_polls.get(),
                    s.user_words.get(),
                    s.barriers.get(),
                ]
            })
            .collect(),
        nic_stats: (0..d.processors().len())
            .map(|i| nic_counters(d.nic(i)))
            .collect(),
        fabric_stats,
        failures: d.delivery_failures().to_vec(),
        gauges,
    }
}

/// Runs the simulation described by `build` under both engines and
/// asserts the full observation records match. `run` drives the finished
/// driver and reports an optional completion flag.
fn assert_engines_agree<B, R>(label: &str, build: B, run: R)
where
    B: Fn(&Arc<Mutex<Vec<Delivery>>>) -> Driver,
    R: Fn(&mut Driver) -> Option<bool>,
{
    let run_one = |engine: Engine| {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut d = build(&log).with_engine(engine);
        let completed = run(&mut d);
        (observe(&d, completed, &log), d.cycles_stepped())
    };
    let (cycle, cycle_stepped) = run_one(Engine::Cycle);
    let (event, event_stepped) = run_one(Engine::Event);
    assert_eq!(cycle, event, "engines diverged on {label}");
    assert!(
        event_stepped <= cycle_stepped,
        "{label}: event engine stepped more cycles ({event_stepped}) than the \
         cycle engine ({cycle_stepped})"
    );
}

#[test]
fn synthetic_patterns_match_across_engines() {
    // RNG-driven workloads: their `next_action` draws randomness, so they
    // keep the conservative `Now` wakeup — the event engine may only skip
    // compute/barrier gaps, and must stay byte-identical doing so.
    for (kind, nodes, heavy) in [
        (NetworkKind::Mesh2D, 16, true),
        (NetworkKind::Cm5, 32, false),
        (NetworkKind::Torus2D, 16, false),
    ] {
        let label = format!("synthetic on {kind:?}");
        assert_engines_agree(
            &label,
            |log| {
                Scenario::new(kind)
                    .nodes(nodes)
                    .seed(41)
                    .nic(NicChoice::Nifdy(kind.nifdy_preset()))
                    .metrics(500)
                    .build_with(|sc| {
                        let cfg = if heavy {
                            SyntheticConfig::heavy(sc.seed())
                        } else {
                            SyntheticConfig::light(sc.seed())
                        };
                        record_all(cfg.build(sc.nodes()), log)
                    })
                    .expect("valid scenario")
            },
            |d| {
                d.run_cycles(25_000);
                None
            },
        );
    }
}

#[test]
fn scan_pipeline_matches_and_actually_skips() {
    // The serialized scan pipeline is the skip-friendly workload: most
    // nodes idle reactively (Quiescent) while the token crawls the ring.
    // The event engine must produce identical results *and* step far
    // fewer cycles.
    for choice in [
        NicChoice::Plain,
        NicChoice::BuffersOnly(NifdyConfig::mesh()),
        NicChoice::Nifdy(NifdyConfig::mesh()),
    ] {
        let label = format!("scan with {}", choice.label());
        let run_one = |engine: Engine| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut d = Scenario::new(NetworkKind::Mesh2D)
                .nodes(4)
                .seed(5)
                .nic(choice.clone())
                .metrics(1_000)
                .build_with(|sc| {
                    record_all(
                        ScanConfig::radix8(sc.sw())
                            .with_delay(400)
                            .build(sc.nodes()),
                        &log,
                    )
                })
                .expect("valid scenario")
                .with_engine(engine);
            let done = d.run_until_quiet(5_000_000);
            assert!(done, "{label}: scan never finished");
            (observe(&d, Some(done), &log), d.cycles_stepped())
        };
        let (cycle, cycle_stepped) = run_one(Engine::Cycle);
        let (event, event_stepped) = run_one(Engine::Event);
        assert_eq!(cycle, event, "engines diverged on {label}");
        assert!(
            event_stepped * 2 < cycle_stepped,
            "{label}: expected a real skip win, got {event_stepped} stepped \
             of {cycle_stepped} cycles"
        );
    }
}

#[test]
fn coalesce_and_random_sweep_match() {
    // Breadth: random destinations over several seeds, topologies, and
    // interfaces, run to completion.
    for seed in [3u64, 17, 92] {
        for kind in [NetworkKind::Mesh2D, NetworkKind::FatTree] {
            for nifdy in [false, true] {
                let choice = if nifdy {
                    NicChoice::Nifdy(kind.nifdy_preset())
                } else {
                    NicChoice::Plain
                };
                let label = format!("coalesce seed {seed} on {kind:?} with {}", choice.label());
                assert_engines_agree(
                    &label,
                    |log| {
                        Scenario::new(kind)
                            .nodes(16)
                            .seed(seed)
                            .nic(choice.clone())
                            .build_with(|sc| {
                                let cfg = CoalesceConfig {
                                    keys_per_node: 24,
                                    seed: sc.seed(),
                                    sw: sc.sw(),
                                };
                                record_all(cfg.build(sc.nodes()), log)
                            })
                            .expect("valid scenario")
                    },
                    |d| Some(d.run_until_quiet(5_000_000)),
                );
            }
        }
    }
}

#[test]
fn chaos_faults_and_typed_failures_match() {
    // The §6.2 chaos path: uniform drops, bursty loss, a permanently dead
    // link, a retry budget. Retransmission timers, failure surfacing, and
    // the drop lottery's RNG stream must all line up across engines.
    let dead = NodeId::new(3);
    let build_fabric = || {
        Fabric::new(
            Box::new(Mesh::d2(2, 2)),
            FabricConfig::default().with_drop_prob(0.02).with_fault(
                FaultConfig::default()
                    .with_ack_drop_prob(0.01)
                    .with_burst(GilbertElliott::with_mean_loss(0.03))
                    .with_link_window(LinkWindow::edge(dead, 0, u64::MAX)),
            ),
        )
    };
    let send = |dst: usize, idx: u32| {
        Action::Send(
            OutboundPacket::new(NodeId::new(dst), 8).with_user(UserData {
                msg_id: 0,
                pkt_index: idx,
                msg_packets: 1,
                user_words: 6,
            }),
        )
    };
    assert_engines_agree(
        "chaos faults",
        |log| {
            let wls: Vec<Box<dyn NodeWorkload>> = (0..4usize)
                .map(|i| -> Box<dyn NodeWorkload> {
                    if i == 0 {
                        Box::new(Script::new(vec![
                            send(3, 0),
                            send(1, 0),
                            send(2, 0),
                            send(1, 1),
                        ]))
                    } else {
                        Box::new(Script::new(vec![]))
                    }
                })
                .collect();
            let cfg = NifdyConfig::mesh()
                .with_retx_timeout(500)
                .with_retx_budget(3);
            Driver::new(
                build_fabric(),
                &NicChoice::Nifdy(cfg),
                SoftwareModel::synthetic(),
                record_all(wls, log),
            )
            .expect("driver builds")
            .with_stall_watchdog(200_000)
        },
        |d| Some(d.run_until_quiet(2_000_000)),
    );
}

#[test]
fn run_sampled_observes_identical_intermediate_states() {
    let sample_one = |engine: Engine| {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut d = Scenario::new(NetworkKind::Mesh2D)
            .nodes(16)
            .seed(9)
            .nic(NicChoice::Nifdy(NetworkKind::Mesh2D.nifdy_preset()))
            .build_with(|sc| {
                record_all(
                    ScanConfig::radix8(sc.sw()).with_delay(40).build(sc.nodes()),
                    &log,
                )
            })
            .expect("valid scenario")
            .with_engine(engine);
        let mut samples = Vec::new();
        d.run_sampled(120_000, 10_000, |d| {
            samples.push((
                d.fabric().now().as_u64(),
                d.packets_received(),
                d.user_words_received(),
            ));
        });
        (samples, observe(&d, None, &log))
    };
    let cycle = sample_one(Engine::Cycle);
    let event = sample_one(Engine::Event);
    assert_eq!(cycle, event, "sampled states diverged");
}

#[test]
fn watchdog_trips_at_the_same_cycle_in_both_engines() {
    // Total loss with no retransmission wedges the sender; the stall
    // watchdog must catch it at the same cycle even when the event engine
    // is skipping — its deadline is an explicit wakeup.
    let trip_message = |engine: Engine| -> String {
        let result = std::panic::catch_unwind(move || {
            let fab = Fabric::new(
                Box::new(Mesh::d2(2, 2)),
                FabricConfig::default().with_drop_prob(1.0),
            );
            let wls: Vec<Box<dyn NodeWorkload>> = (0..4usize)
                .map(|i| -> Box<dyn NodeWorkload> {
                    if i == 0 {
                        Box::new(Script::new(vec![Action::Send(OutboundPacket::new(
                            NodeId::new(1),
                            8,
                        ))]))
                    } else {
                        Box::new(Script::new(vec![]))
                    }
                })
                .collect();
            let mut d = Driver::new(
                fab,
                &NicChoice::Nifdy(NifdyConfig::mesh()),
                SoftwareModel::synthetic(),
                wls,
            )
            .expect("driver builds")
            .with_stall_watchdog(5_000)
            .with_engine(engine);
            let _ = d.run_until_quiet(1_000_000);
        });
        let err = result.expect_err("watchdog must trip");
        err.downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".to_string())
    };
    let cycle_msg = trip_message(Engine::Cycle);
    let event_msg = trip_message(Engine::Event);
    assert!(cycle_msg.contains("stall watchdog tripped"), "{cycle_msg}");
    assert_eq!(
        cycle_msg, event_msg,
        "watchdog reports differ between engines"
    );
}

/// A scripted workload driven from a vector of actions.
struct Script {
    actions: std::vec::IntoIter<Action>,
}

impl Script {
    fn new(actions: Vec<Action>) -> Self {
        Script {
            actions: actions.into_iter(),
        }
    }
}

impl NodeWorkload for Script {
    fn next_action(&mut self, _now: Cycle) -> Action {
        self.actions.next().unwrap_or(Action::Done)
    }
    fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
}

#[cfg(feature = "trace")]
mod trace_parity {
    use super::*;
    use nifdy_trace::{TraceConfig, TraceHandle};

    /// Trace streams and journey-analysis reports must be byte-identical.
    #[test]
    fn trace_streams_and_journey_reports_match() {
        let run_one = |engine: Engine| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let trace = TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 14));
            let mut d = Scenario::new(NetworkKind::Mesh2D)
                .nodes(16)
                .seed(13)
                .nic(NicChoice::Nifdy(
                    NifdyConfig::mesh()
                        .with_retx_timeout(500)
                        .with_retx_budget(4),
                ))
                .trace(trace.clone())
                .build_with(|sc| {
                    record_all(
                        ScanConfig::radix8(sc.sw()).with_delay(30).build(sc.nodes()),
                        &log,
                    )
                })
                .expect("valid scenario")
                .with_engine(engine);
            let done = d.run_until_quiet(5_000_000);
            assert!(done, "scan never finished");
            let events = trace.snapshot();
            let report = nifdy_analyze::analyze(
                &events,
                &trace.loss(),
                &nifdy_analyze::ExternalCounts::default(),
                &nifdy_analyze::AnomalyConfig::default(),
            );
            (
                events,
                report.to_json().render(),
                observe(&d, Some(done), &log),
            )
        };
        let (cycle_events, cycle_json, cycle_rec) = run_one(Engine::Cycle);
        let (event_events, event_json, event_rec) = run_one(Engine::Event);
        assert_eq!(
            cycle_events.len(),
            event_events.len(),
            "trace stream lengths differ"
        );
        assert_eq!(cycle_events, event_events, "trace streams differ");
        assert_eq!(cycle_json, event_json, "journey analysis JSON differs");
        assert_eq!(cycle_rec, event_rec, "observation records differ");
    }
}
