//! Integration tests of the processor/driver layer: receive priority,
//! barrier semantics with finished nodes, send-overhead pacing,
//! determinism of offered traffic across interface configurations, and
//! fault handling (a dead link must surface typed failures, not hang).

use nifdy::{Delivered, FailureKind, NifdyConfig, OutboundPacket};
use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, FaultConfig, LinkWindow, UserData};
use nifdy_sim::{Cycle, NodeId};
use nifdy_traffic::{Action, Driver, NicChoice, NodeWorkload, SoftwareModel, SyntheticConfig};

/// A scripted workload driven from a vector of actions.
struct Script {
    actions: std::vec::IntoIter<Action>,
    received: Vec<(usize, u32)>,
}

impl Script {
    fn new(actions: Vec<Action>) -> Self {
        Script {
            actions: actions.into_iter(),
            received: Vec::new(),
        }
    }
}

impl NodeWorkload for Script {
    fn next_action(&mut self, _now: Cycle) -> Action {
        self.actions.next().unwrap_or(Action::Done)
    }
    fn on_receive(&mut self, pkt: &Delivered, _now: Cycle) {
        self.received.push((pkt.src.index(), pkt.user.pkt_index));
    }
}

fn send_to(dst: usize, idx: u32) -> Action {
    Action::Send(
        OutboundPacket::new(NodeId::new(dst), 8).with_user(UserData {
            msg_id: 0,
            pkt_index: idx,
            msg_packets: 1,
            user_words: 6,
        }),
    )
}

#[test]
fn finished_nodes_do_not_block_barriers() {
    // Node 0 runs two barrier-separated phases; every other node finishes
    // immediately. The barrier must still release (done nodes count as
    // arrived).
    let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
    let wls: Vec<Box<dyn NodeWorkload>> = (0..4)
        .map(|i| -> Box<dyn NodeWorkload> {
            if i == 0 {
                Box::new(Script::new(vec![
                    send_to(1, 0),
                    Action::Barrier,
                    send_to(1, 1),
                    Action::Barrier,
                ]))
            } else {
                Box::new(Script::new(vec![]))
            }
        })
        .collect();
    let mut d = Driver::new(
        fab,
        &NicChoice::Nifdy(NifdyConfig::mesh()),
        SoftwareModel::synthetic(),
        wls,
    )
    .expect("driver builds");
    assert!(d.run_until_quiet(200_000), "barrier wedged with done nodes");
    assert_eq!(d.processors()[0].stats().barriers.get(), 2);
}

#[test]
fn send_overhead_paces_the_processor() {
    // 10 sends at T_send = 40 cannot complete in fewer than 400 cycles even
    // on an infinitely fast network.
    let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
    let actions: Vec<Action> = (0..10).map(|i| send_to(3, i)).collect();
    let wls: Vec<Box<dyn NodeWorkload>> = (0..4)
        .map(|i| -> Box<dyn NodeWorkload> {
            if i == 0 {
                Box::new(Script::new(actions_clone(&actions, i)))
            } else {
                Box::new(Script::new(vec![]))
            }
        })
        .collect();
    fn actions_clone(a: &[Action], _i: usize) -> Vec<Action> {
        a.to_vec()
    }
    let mut d = Driver::new(
        fab,
        &NicChoice::Nifdy(NifdyConfig::mesh()),
        SoftwareModel::synthetic(),
        wls,
    )
    .expect("driver builds");
    assert!(d.run_until_quiet(500_000));
    assert!(
        d.fabric().now().as_u64() >= 400,
        "sends completed impossibly fast: {}",
        d.fabric().now()
    );
    assert_eq!(d.packets_received(), 10);
}

#[test]
fn receive_has_priority_over_new_sends() {
    // A node with an endless send script and a full arrivals queue must
    // still drain arrivals: the AM layer services arrivals before issuing
    // the next send.
    struct Flood {
        received: u32,
    }
    impl NodeWorkload for Flood {
        fn next_action(&mut self, _now: Cycle) -> Action {
            send_to(2, 0)
        }
        fn on_receive(&mut self, _p: &Delivered, _now: Cycle) {
            self.received += 1;
        }
    }
    let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
    let wls: Vec<Box<dyn NodeWorkload>> = (0..4)
        .map(|i| -> Box<dyn NodeWorkload> {
            if i == 1 {
                // Node 1 floods node 0 while node 0 floods node 2.
                Box::new(Script::new((0..50).map(|k| send_to(0, k)).collect()))
            } else {
                Box::new(Flood { received: 0 })
            }
        })
        .collect();
    let mut d = Driver::new(
        fab,
        &NicChoice::Nifdy(NifdyConfig::mesh()),
        SoftwareModel::synthetic(),
        wls,
    )
    .expect("driver builds");
    d.run_cycles(150_000);
    // Node 0 must have received node 1's packets despite never idling.
    assert!(
        d.processors()[0].stats().received.get() >= 40,
        "receive starvation: {}",
        d.processors()[0].stats().received.get()
    );
}

#[test]
fn persistent_link_down_surfaces_typed_failures_without_hanging() {
    // Node 3's edge link never comes back up. With a retry budget, the
    // senders must abandon the packets, surface typed failures through the
    // driver, and drain to quiet — under an armed stall watchdog, so a hang
    // would panic rather than time out silently.
    let dead = NodeId::new(3);
    let fab = Fabric::new(
        Box::new(Mesh::d2(2, 2)),
        FabricConfig::default().with_fault(
            FaultConfig::default().with_link_window(LinkWindow::edge(dead, 0, u64::MAX)),
        ),
    );
    let wls: Vec<Box<dyn NodeWorkload>> = (0..4)
        .map(|i| -> Box<dyn NodeWorkload> {
            if i == 0 {
                // Two doomed packets to the dead node, one healthy packet.
                Box::new(Script::new(vec![
                    send_to(3, 0),
                    send_to(3, 1),
                    send_to(1, 0),
                ]))
            } else {
                Box::new(Script::new(vec![]))
            }
        })
        .collect();
    let cfg = NifdyConfig::mesh()
        .with_retx_timeout(500)
        .with_retx_budget(3);
    let mut d = Driver::new(fab, &NicChoice::Nifdy(cfg), SoftwareModel::synthetic(), wls)
        .expect("driver builds")
        .with_stall_watchdog(100_000);
    assert!(
        d.run_until_quiet(2_000_000),
        "dead link wedged the simulation"
    );
    assert_eq!(d.packets_received(), 1, "healthy packet still delivered");
    let failures = d.delivery_failures();
    assert_eq!(failures.len(), 2, "one typed failure per doomed packet");
    for f in failures {
        assert_eq!(f.dst, dead);
        assert_eq!(f.retries, 3, "budget bounds the retries");
        assert_eq!(f.kind, FailureKind::Scalar);
    }
    let users: Vec<u32> = failures
        .iter()
        .map(|f| f.user.expect("copy retained").pkt_index)
        .collect();
    assert_eq!(users, vec![0, 1], "failures identify the lost payloads");
}

#[test]
fn offered_traffic_is_identical_across_interface_models() {
    // The paper: "the same sequence of bursts is generated regardless of
    // network and NIFDY configuration used". The synthetic workload must
    // offer byte-identical streams under different NICs; only timing
    // differs. We check the first packets' destinations match.
    fn first_destinations(choice: NicChoice) -> Vec<usize> {
        let cfg = SyntheticConfig::heavy(5);
        let mut wl = nifdy_traffic::Synthetic::new(cfg, NodeId::new(7), 64);
        let mut dsts = Vec::new();
        for _ in 0..100 {
            if let Action::Send(p) = wl.next_action(Cycle::ZERO) {
                dsts.push(p.dst.index());
            }
        }
        let _ = choice;
        dsts
    }
    let a = first_destinations(NicChoice::Plain);
    let b = first_destinations(NicChoice::Nifdy(NifdyConfig::mesh()));
    assert_eq!(a, b);
}
