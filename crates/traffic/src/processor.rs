//! The polling processor model.
//!
//! The paper's simulator allows "only polling message reception ... thus the
//! computation always initiates interaction with the network". Each
//! processor runs a [`NodeWorkload`] script: it asks the workload what to do
//! next (send / compute / barrier / idle), pays the per-packet software
//! overheads of its [`SoftwareModel`](crate::SoftwareModel), and receives by
//! polling — preferring a pending arrival over issuing the next send, which
//! is how an Active-Message layer behaves and what produces the paper's
//! radix-sort "continually receive with no chance to send" pathology.

use nifdy::{Delivered, Nic, OutboundPacket};
use nifdy_sim::metrics::Counter;
use nifdy_sim::{Cycle, NodeId, Wakeup};

use crate::overheads::SoftwareModel;

/// What a workload wants its processor to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Hand a packet to the NIC (retries automatically until accepted).
    Send(OutboundPacket),
    /// Compute (or deliberately ignore the network) for the given cycles.
    Compute(u64),
    /// Enter the global barrier; the processor stalls until every
    /// participating node arrives.
    Barrier,
    /// Nothing to send; poll the network.
    Idle,
    /// This node's script is complete (it keeps polling so the network can
    /// drain).
    ///
    /// Contract: once a workload returns `Done`, every later
    /// [`next_action`](NodeWorkload::next_action) call must return `Done`
    /// again without observable side effects — the event-driven driver
    /// batches the post-completion polling without re-consulting the
    /// workload.
    Done,
}

/// Per-node workload logic, driven by its processor.
///
/// `Send` is a supertrait so a boxed workload (and therefore a whole
/// [`Driver`](crate::Driver)) can move into a worker thread when experiment
/// cells run in parallel.
pub trait NodeWorkload: Send {
    /// The next thing this node wants to do. Called whenever the processor
    /// is free and not retrying a send.
    fn next_action(&mut self, now: Cycle) -> Action;

    /// Called for every packet the processor receives.
    fn on_receive(&mut self, pkt: &Delivered, now: Cycle);

    /// When this workload next wants a [`next_action`] call, under the
    /// [`Wakeup`] contract.
    ///
    /// Overriding with `At(t)` / `Quiescent` promises that every
    /// `next_action` call strictly before the wakeup returns
    /// [`Action::Idle`] *and has no side effects* (no RNG draws, no state
    /// changes) — the event-driven driver replaces those calls with
    /// batched empty polls. `Quiescent` additionally promises the workload
    /// only becomes ready again through [`on_receive`]. Workloads whose
    /// `next_action` mutates internal state on idle paths (e.g. drawing
    /// randomness) must keep the default `Now`.
    ///
    /// [`next_action`]: NodeWorkload::next_action
    /// [`on_receive`]: NodeWorkload::on_receive
    fn next_event(&self, now: Cycle) -> Wakeup {
        let _ = now;
        Wakeup::Now
    }
}

/// Events a processor reports to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcEvent {
    /// Nothing notable.
    None,
    /// The node entered the barrier and is now blocked.
    EnteredBarrier,
}

/// How the event-driven driver should treat a processor for the coming
/// cycles (computed by [`Processor::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcWake {
    /// Stepping this cycle may do observable work beyond an empty poll —
    /// the driver must fall back to cycle stepping.
    Step,
    /// Computing until the given cycle; does nothing before it.
    Busy(Cycle),
    /// Idle-polling the network at `t_poll` cadence. `Some(t)` bounds the
    /// batch: the workload becomes ready at `t`. `None` means the polls
    /// continue until external input (barrier release or an arrival).
    Polling(Option<Cycle>),
}

/// Processor activity counters.
#[derive(Debug, Clone, Default)]
pub struct ProcStats {
    /// Packets successfully handed to the NIC.
    pub sent: Counter,
    /// Packets received (successful polls).
    pub received: Counter,
    /// Unsuccessful polls.
    pub empty_polls: Counter,
    /// Useful payload words received.
    pub user_words: Counter,
    /// Completed barrier crossings.
    pub barriers: Counter,
}

/// A single polling processor bound to one node.
#[derive(Debug)]
pub struct Processor {
    node: NodeId,
    sw: SoftwareModel,
    busy_until: Cycle,
    pending_send: Option<OutboundPacket>,
    in_barrier: bool,
    done: bool,
    stats: ProcStats,
}

impl Processor {
    /// Creates a processor for `node` with software costs `sw`.
    pub fn new(node: NodeId, sw: SoftwareModel) -> Self {
        Processor {
            node,
            sw,
            busy_until: Cycle::ZERO,
            pending_send: None,
            in_barrier: false,
            done: false,
            stats: ProcStats::default(),
        }
    }

    /// The node this processor runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the node's script has finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether the node is blocked in the barrier.
    pub fn in_barrier(&self) -> bool {
        self.in_barrier
    }

    /// Activity counters.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Releases the processor from the barrier, charging `cost` cycles.
    pub(crate) fn release_barrier(&mut self, now: Cycle, cost: u64) {
        debug_assert!(self.in_barrier);
        self.in_barrier = false;
        self.busy_until = now + cost;
        self.stats.barriers.incr();
    }

    /// Polls the NIC once, paying the appropriate overhead.
    fn poll(&mut self, nic: &mut dyn Nic, wl: &mut dyn NodeWorkload, now: Cycle) {
        if let Some(d) = nic.poll(now) {
            self.busy_until = now + self.sw.t_receive;
            self.stats.received.incr();
            self.stats.user_words.add(u64::from(d.user.user_words));
            wl.on_receive(&d, now);
        } else {
            self.busy_until = now + self.sw.t_poll;
            self.stats.empty_polls.incr();
        }
    }

    /// Classifies what this processor needs from the driver at `now`, for
    /// the event-driven engine. Conservative: anything that could do
    /// observable work is [`ProcWake::Step`].
    pub(crate) fn classify(&self, nic: &dyn Nic, wl: &dyn NodeWorkload, now: Cycle) -> ProcWake {
        if self.busy_until > now {
            return ProcWake::Busy(self.busy_until);
        }
        if self.in_barrier {
            // Waiting nodes poll so the network drains; a deliverable
            // arrival makes the poll a real receive.
            return if nic.has_deliverable() {
                ProcWake::Step
            } else {
                ProcWake::Polling(None)
            };
        }
        if nic.has_deliverable() || self.pending_send.is_some() {
            return ProcWake::Step;
        }
        if self.done {
            // Finished scripts keep polling; `Action::Done`'s contract
            // makes skipping the `next_action` calls safe.
            return ProcWake::Polling(None);
        }
        match wl.next_event(now) {
            Wakeup::Now => ProcWake::Step,
            Wakeup::At(t) if t <= now => ProcWake::Step,
            Wakeup::At(t) => ProcWake::Polling(Some(t)),
            Wakeup::Quiescent => ProcWake::Polling(None),
        }
    }

    /// The cycle this processor next leaves its busy/delay state: its
    /// [`step`](Self::step) is a guaranteed no-op strictly before then
    /// (the very first check returns), which is what lets the driver gate
    /// per-node stepping.
    pub(crate) fn next_due(&self) -> Cycle {
        self.busy_until
    }

    /// Replays the empty polls this processor would have issued over
    /// `[now, until)` in one batch, without touching the NIC or workload.
    ///
    /// Only valid inside an event-engine skip window, where nothing is
    /// deliverable and nothing can arrive: each poll slot (spaced `t_poll`
    /// from the previous `busy_until`) misses, charges `t_poll`, and bumps
    /// `empty_polls` — exactly what per-cycle stepping would have done.
    pub(crate) fn batch_idle_polls(&mut self, now: Cycle, until: Cycle) {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        if start >= until {
            return;
        }
        let span = until.saturating_since(start);
        let t_poll = self.sw.t_poll;
        // t_poll == 0 degenerates to one poll per cycle, as cycle stepping
        // would produce.
        let k = if t_poll == 0 {
            span
        } else {
            span.div_ceil(t_poll)
        };
        self.stats.empty_polls.add(k);
        self.busy_until = start + k * t_poll;
    }

    /// One scheduling slot. Call once per cycle, before the NIC steps.
    pub fn step(&mut self, nic: &mut dyn Nic, wl: &mut dyn NodeWorkload, now: Cycle) -> ProcEvent {
        if self.busy_until > now {
            return ProcEvent::None;
        }
        // Barriers are split-phase: a waiting node keeps polling so the
        // network can drain (as real bulk-synchronous layers do).
        if self.in_barrier {
            self.poll(nic, wl, now);
            return ProcEvent::None;
        }

        // An Active-Message layer services arrivals before issuing new work.
        if nic.has_deliverable() {
            self.poll(nic, wl, now);
            return ProcEvent::None;
        }

        // Retry a blocked send before asking for new work; poll while
        // waiting so a backlogged receiver still drains.
        if let Some(pkt) = self.pending_send.take() {
            if nic.try_send(pkt, now) {
                self.busy_until = now + self.sw.t_send;
                self.stats.sent.incr();
            } else {
                self.pending_send = Some(pkt);
                self.busy_until = now + self.sw.t_poll;
                self.stats.empty_polls.incr();
            }
            return ProcEvent::None;
        }

        match wl.next_action(now) {
            Action::Send(pkt) => {
                if nic.try_send(pkt, now) {
                    self.busy_until = now + self.sw.t_send;
                    self.stats.sent.incr();
                } else {
                    self.pending_send = Some(pkt);
                    self.busy_until = now + self.sw.t_poll;
                }
                ProcEvent::None
            }
            Action::Compute(c) => {
                self.busy_until = now + c.max(1);
                ProcEvent::None
            }
            Action::Barrier => {
                self.in_barrier = true;
                ProcEvent::EnteredBarrier
            }
            Action::Idle => {
                self.poll(nic, wl, now);
                ProcEvent::None
            }
            Action::Done => {
                self.done = true;
                self.poll(nic, wl, now);
                ProcEvent::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy::{NifdyConfig, NifdyUnit};
    use nifdy_net::topology::Mesh;
    use nifdy_net::{Fabric, FabricConfig};

    /// Sends `n` packets to a fixed destination, then idles.
    struct Burst {
        dst: NodeId,
        left: u32,
        received: u32,
    }

    impl NodeWorkload for Burst {
        fn next_action(&mut self, _now: Cycle) -> Action {
            if self.left > 0 {
                self.left -= 1;
                Action::Send(OutboundPacket::new(self.dst, 8))
            } else {
                Action::Done
            }
        }
        fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {
            self.received += 1;
        }
    }

    #[test]
    fn processor_pays_send_overhead() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
        let sw = SoftwareModel::synthetic();
        let mut sender = Processor::new(NodeId::new(0), sw);
        let mut receiver = Processor::new(NodeId::new(3), sw);
        let mut nic_s = NifdyUnit::new(NodeId::new(0), NifdyConfig::mesh());
        let mut nic_r = NifdyUnit::new(NodeId::new(3), NifdyConfig::mesh());
        let mut wl_s = Burst {
            dst: NodeId::new(3),
            left: 5,
            received: 0,
        };
        let mut wl_r = Burst {
            dst: NodeId::new(0),
            left: 0,
            received: 0,
        };
        for _ in 0..100_000 {
            let now = fab.now();
            sender.step(&mut nic_s, &mut wl_s, now);
            receiver.step(&mut nic_r, &mut wl_r, now);
            nic_s.step(&mut fab);
            nic_r.step(&mut fab);
            fab.step();
            if wl_r.received == 5 {
                break;
            }
        }
        assert_eq!(wl_r.received, 5);
        assert_eq!(sender.stats().sent.get(), 5);
        assert_eq!(receiver.stats().received.get(), 5);
        // Sends are spaced at least t_send apart: 5 sends cannot finish in
        // fewer than 5 * 40 cycles.
        assert!(fab.now().as_u64() >= 200);
    }

    #[test]
    fn barrier_blocks_until_release() {
        let sw = SoftwareModel::synthetic();
        let mut p = Processor::new(NodeId::new(0), sw);
        struct B;
        impl NodeWorkload for B {
            fn next_action(&mut self, _now: Cycle) -> Action {
                Action::Barrier
            }
            fn on_receive(&mut self, _p: &Delivered, _n: Cycle) {}
        }
        let mut fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
        let mut nic = NifdyUnit::new(NodeId::new(0), NifdyConfig::mesh());
        let ev = p.step(&mut nic, &mut B, fab.now());
        assert_eq!(ev, ProcEvent::EnteredBarrier);
        assert!(p.in_barrier());
        // While in the barrier, the processor does nothing.
        assert_eq!(p.step(&mut nic, &mut B, fab.now()), ProcEvent::None);
        p.release_barrier(Cycle::new(10), 40);
        assert!(!p.in_barrier());
        assert_eq!(p.stats().barriers.get(), 1);
        let _ = &mut fab;
    }
}
