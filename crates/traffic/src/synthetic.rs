//! The synthetic bursty traffic patterns of §4.1.
//!
//! Both patterns consist of *phases separated by barriers*. A sending node
//! "will attempt to send its packets (typically 100 to 300 of them) as
//! quickly as possible", as consecutive multi-packet messages to randomly
//! chosen destinations.
//!
//! * **Heavy**: every node sends every phase; message lengths are uniform
//!   on 1..=5 packets.
//! * **Light**: each node sends with 33% probability per phase; the message
//!   length distribution includes 10- and 20-packet messages ("most messages
//!   are short, but long messages account for more packets overall"), and
//!   nodes pseudo-randomly enter non-responsive periods during which they
//!   neither send nor poll.
//!
//! Each node draws from its own [`SimRng`] stream, so "the same sequence of
//! bursts is generated regardless of network and NIFDY configuration used".

use nifdy::{Delivered, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::{Cycle, NodeId, SimRng};

use crate::processor::{Action, NodeWorkload};

/// Configuration of the synthetic pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Heavy (true) or light (false) traffic.
    pub heavy: bool,
    /// Packets a sending node emits per phase.
    pub packets_per_phase: u32,
    /// Wire packet size in words (the paper uses 8-word packets here).
    pub packet_words: u16,
    /// Messages at least this long request a bulk dialog.
    pub bulk_threshold: u32,
    /// Probability of entering a non-responsive period at a decision point
    /// (light traffic only).
    pub nonresponsive_prob: f64,
    /// Length of a non-responsive period, in cycles.
    pub nonresponsive_cycles: u64,
    /// Base seed; combined with the node index for per-node streams.
    pub seed: u64,
    /// Upper bound on message length in packets (Figure 4 uses 1 to study
    /// pure scalar traffic).
    pub max_msg_len: u32,
}

impl SyntheticConfig {
    /// The heavy pattern of Figure 2.
    pub fn heavy(seed: u64) -> Self {
        SyntheticConfig {
            heavy: true,
            packets_per_phase: 150,
            packet_words: 8,
            bulk_threshold: 4,
            nonresponsive_prob: 0.0,
            nonresponsive_cycles: 0,
            seed,
            max_msg_len: 5,
        }
    }

    /// Short-message variant: every message is a single packet and bulk is
    /// never requested (the Figure 4 scalability study).
    pub fn short_messages(seed: u64) -> Self {
        let mut cfg = SyntheticConfig::heavy(seed);
        cfg.max_msg_len = 1;
        cfg.bulk_threshold = u32::MAX;
        cfg
    }

    /// The light pattern of Figure 3.
    pub fn light(seed: u64) -> Self {
        SyntheticConfig {
            heavy: false,
            packets_per_phase: 150,
            packet_words: 8,
            bulk_threshold: 4,
            nonresponsive_prob: 0.004,
            nonresponsive_cycles: 400,
            seed,
            max_msg_len: 20,
        }
    }

    /// Builds the per-node workloads for a machine of `num_nodes`.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn NodeWorkload>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(Synthetic::new(self.clone(), NodeId::new(i), num_nodes))
            })
            .collect()
    }
}

/// Per-node synthetic traffic generator.
#[derive(Debug)]
pub struct Synthetic {
    cfg: SyntheticConfig,
    node: NodeId,
    num_nodes: usize,
    rng: SimRng,
    sending_this_phase: bool,
    left_in_phase: u32,
    msg_dst: NodeId,
    msg_left: u32,
    msg_len: u32,
    msg_id: u64,
    pkt_in_msg: u32,
}

impl Synthetic {
    /// Creates the generator for one node.
    pub fn new(cfg: SyntheticConfig, node: NodeId, num_nodes: usize) -> Self {
        let rng = SimRng::from_seed_stream(cfg.seed, node.index() as u64);
        let mut s = Synthetic {
            cfg,
            node,
            num_nodes,
            rng,
            sending_this_phase: false,
            left_in_phase: 0,
            msg_dst: node,
            msg_left: 0,
            msg_len: 0,
            msg_id: 0,
            pkt_in_msg: 0,
        };
        s.begin_phase();
        s
    }

    fn begin_phase(&mut self) {
        self.sending_this_phase = self.cfg.heavy || self.rng.gen_bool(1.0 / 3.0);
        self.left_in_phase = if self.sending_this_phase {
            self.cfg.packets_per_phase
        } else {
            0
        };
        self.msg_left = 0;
    }

    fn begin_message(&mut self) {
        // New random destination, never self.
        let mut dst = self.rng.gen_range_usize(0..self.num_nodes - 1);
        if dst >= self.node.index() {
            dst += 1;
        }
        self.msg_dst = NodeId::new(dst);
        self.msg_len = if self.cfg.heavy {
            self.rng.gen_range_u64(1..6) as u32
        } else {
            // Mostly short; 10s and 20s carry most of the volume.
            match self.rng.gen_range_u64(0..10) {
                0..=5 => self.rng.gen_range_u64(1..4) as u32,
                6..=7 => 10,
                _ => 20,
            }
        };
        self.msg_len = self
            .msg_len
            .min(self.cfg.max_msg_len.max(1))
            .min(self.left_in_phase.max(1));
        self.msg_left = self.msg_len;
        self.msg_id += 1;
        self.pkt_in_msg = 0;
    }
}

impl NodeWorkload for Synthetic {
    fn next_action(&mut self, _now: Cycle) -> Action {
        if !self.sending_this_phase || self.left_in_phase == 0 {
            // Possibly go non-responsive (light traffic), otherwise barrier
            // into the next phase once everyone is ready; poll meanwhile.
            if self.cfg.nonresponsive_prob > 0.0 && self.rng.gen_bool(self.cfg.nonresponsive_prob) {
                return Action::Compute(self.cfg.nonresponsive_cycles);
            }
            if self.left_in_phase == 0 && self.sending_this_phase {
                // Finished this phase's budget: next phase via barrier.
                self.begin_phase();
                return Action::Barrier;
            }
            if !self.sending_this_phase {
                // Receivers idle-poll; they re-enter a phase at the barrier
                // together with everyone else. To keep every node
                // participating in barriers, a non-sender joins immediately.
                self.begin_phase();
                return Action::Barrier;
            }
            return Action::Idle;
        }
        if self.msg_left == 0 {
            self.begin_message();
        }
        // Occasional non-responsive period even while sending.
        if self.cfg.nonresponsive_prob > 0.0 && self.rng.gen_bool(self.cfg.nonresponsive_prob / 4.0)
        {
            return Action::Compute(self.cfg.nonresponsive_cycles);
        }
        self.msg_left -= 1;
        self.left_in_phase -= 1;
        let idx = self.pkt_in_msg;
        self.pkt_in_msg += 1;
        let pkt = OutboundPacket::new(self.msg_dst, self.cfg.packet_words)
            .with_bulk(self.msg_len >= self.cfg.bulk_threshold)
            .with_user(UserData {
                msg_id: self.msg_id,
                pkt_index: idx,
                msg_packets: self.msg_len,
                user_words: self.cfg.packet_words - 1,
            });
        Action::Send(pkt)
    }

    fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut Synthetic, max: usize) -> Vec<Action> {
        (0..max).map(|_| s.next_action(Cycle::ZERO)).collect()
    }

    #[test]
    fn heavy_nodes_always_send_their_budget() {
        let cfg = SyntheticConfig::heavy(1);
        let mut s = Synthetic::new(cfg, NodeId::new(0), 16);
        let actions = drain(&mut s, 150);
        assert!(actions.iter().all(|a| matches!(a, Action::Send(_))));
        // The 151st action is the phase barrier.
        assert_eq!(s.next_action(Cycle::ZERO), Action::Barrier);
    }

    #[test]
    fn messages_never_target_self() {
        let cfg = SyntheticConfig::heavy(2);
        let mut s = Synthetic::new(cfg, NodeId::new(5), 16);
        for _ in 0..150 {
            if let Action::Send(p) = s.next_action(Cycle::ZERO) {
                assert_ne!(p.dst, NodeId::new(5));
            }
        }
    }

    #[test]
    fn heavy_message_lengths_stay_in_one_to_five() {
        let cfg = SyntheticConfig::heavy(3);
        let mut s = Synthetic::new(cfg, NodeId::new(0), 16);
        let mut lens = Vec::new();
        for _ in 0..600 {
            if let Action::Send(p) = s.next_action(Cycle::ZERO) {
                if p.user.pkt_index == 0 {
                    lens.push(p.user.msg_packets);
                }
            }
        }
        assert!(lens.iter().all(|&l| (1..=5).contains(&l)), "{lens:?}");
        assert!(lens.contains(&1) && lens.contains(&5));
    }

    #[test]
    fn light_traffic_includes_long_messages_and_nonresponsive_periods() {
        let cfg = SyntheticConfig::light(4);
        let mut s = Synthetic::new(cfg, NodeId::new(0), 16);
        let mut saw_long = false;
        let mut saw_compute = false;
        for _ in 0..5_000 {
            match s.next_action(Cycle::ZERO) {
                Action::Send(p) => saw_long |= p.user.msg_packets >= 10,
                Action::Compute(_) => saw_compute = true,
                _ => {}
            }
        }
        assert!(saw_long, "no long messages in light traffic");
        assert!(saw_compute, "no non-responsive periods in light traffic");
    }

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mk = || Synthetic::new(SyntheticConfig::heavy(9), NodeId::new(3), 64);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..300 {
            assert_eq!(a.next_action(Cycle::ZERO), b.next_action(Cycle::ZERO));
        }
    }

    #[test]
    fn bulk_requested_only_for_long_messages() {
        let cfg = SyntheticConfig::heavy(7);
        let mut s = Synthetic::new(cfg, NodeId::new(0), 16);
        for _ in 0..600 {
            if let Action::Send(p) = s.next_action(Cycle::ZERO) {
                assert_eq!(p.want_bulk, p.user.msg_packets >= 4);
            }
        }
    }
}
