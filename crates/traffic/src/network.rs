//! The catalog of simulated networks (§3 / Table 3 of the paper), with the
//! fabric settings and best NIFDY parameters for each.

use nifdy::NifdyConfig;
use nifdy_net::topology::{AdaptiveMesh, Butterfly, Cm5FatTree, FatTree, Mesh, Topology, Torus};
use nifdy_net::{Fabric, FabricConfig, SwitchingPolicy};

/// One of the paper's simulated 64-node networks (plus the §6.3 adaptive
/// mesh used by the extension experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// 8×8 wormhole mesh, 1-byte links, 2-flit channel buffers.
    Mesh2D,
    /// 4×4×4 wormhole mesh.
    Mesh3D,
    /// 8×8 wormhole torus with dateline VCs.
    Torus2D,
    /// Full 4-ary fat tree, cut-through.
    FatTree,
    /// Full 4-ary fat tree, store-and-forward.
    SfFatTree,
    /// CM-5-like fat tree: two parents in the lower levels, 4-bit links
    /// (strict time multiplexing of the two logical networks).
    Cm5,
    /// Radix-4 butterfly, dilation 1 (single path).
    Butterfly,
    /// Radix-4 multibutterfly, dilation 2 (adaptive multipath).
    Multibutterfly,
    /// West-first adaptive 2D mesh — the §6.3 future-work network; not part
    /// of [`ALL`](Self::ALL).
    AdaptiveMesh2D,
}

impl NetworkKind {
    /// The eight networks of Figures 2/3/7/8, in presentation order.
    pub const ALL: [NetworkKind; 8] = [
        NetworkKind::FatTree,
        NetworkKind::Cm5,
        NetworkKind::SfFatTree,
        NetworkKind::Mesh2D,
        NetworkKind::Torus2D,
        NetworkKind::Mesh3D,
        NetworkKind::Butterfly,
        NetworkKind::Multibutterfly,
    ];

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkKind::Mesh2D => "mesh-2d",
            NetworkKind::Mesh3D => "mesh-3d",
            NetworkKind::Torus2D => "torus-2d",
            NetworkKind::FatTree => "fat-tree",
            NetworkKind::SfFatTree => "sf-fat-tree",
            NetworkKind::Cm5 => "cm5-fat-tree",
            NetworkKind::Butterfly => "butterfly",
            NetworkKind::Multibutterfly => "multibfly",
            NetworkKind::AdaptiveMesh2D => "adaptive-mesh-2d",
        }
    }

    /// Builds the topology at `nodes` nodes (64 for the standard runs).
    ///
    /// # Panics
    ///
    /// Panics if the kind cannot be built at that size (e.g. a non-square
    /// mesh size).
    pub fn topology(&self, nodes: usize, seed: u64) -> Box<dyn Topology> {
        match self {
            NetworkKind::Mesh2D => {
                let side = (nodes as f64).sqrt() as usize;
                assert_eq!(side * side, nodes, "mesh-2d needs a square node count");
                Box::new(Mesh::d2(side, side))
            }
            NetworkKind::Mesh3D => {
                let side = (nodes as f64).cbrt().round() as usize;
                assert_eq!(
                    side * side * side,
                    nodes,
                    "mesh-3d needs a cubic node count"
                );
                Box::new(Mesh::d3(side, side, side))
            }
            NetworkKind::Torus2D => {
                let side = (nodes as f64).sqrt() as usize;
                assert_eq!(side * side, nodes, "torus-2d needs a square node count");
                Box::new(Torus::d2(side, side))
            }
            NetworkKind::FatTree | NetworkKind::SfFatTree => Box::new(FatTree::new(nodes)),
            NetworkKind::Cm5 => Box::new(Cm5FatTree::new(nodes)),
            NetworkKind::Butterfly => Box::new(Butterfly::new(nodes, 1, seed)),
            NetworkKind::Multibutterfly => Box::new(Butterfly::new(nodes, 2, seed)),
            NetworkKind::AdaptiveMesh2D => {
                let side = (nodes as f64).sqrt() as usize;
                assert_eq!(
                    side * side,
                    nodes,
                    "adaptive-mesh-2d needs a square node count"
                );
                Box::new(AdaptiveMesh::d2(side, side))
            }
        }
    }

    /// The fabric configuration the paper uses for this network.
    pub fn fabric_config(&self, seed: u64) -> FabricConfig {
        let base = FabricConfig::default().with_seed(seed);
        match self {
            NetworkKind::Mesh2D | NetworkKind::Mesh3D | NetworkKind::AdaptiveMesh2D => base,
            NetworkKind::Torus2D => base.with_vcs_per_lane(2),
            NetworkKind::FatTree => base
                .with_policy(SwitchingPolicy::CutThrough)
                .with_vc_buf_flits(8),
            NetworkKind::SfFatTree => base
                .with_policy(SwitchingPolicy::StoreAndForward)
                .with_vc_buf_flits(8),
            NetworkKind::Cm5 => base.with_vc_buf_flits(4).with_time_mux(true),
            NetworkKind::Butterfly | NetworkKind::Multibutterfly => base,
        }
    }

    /// Builds the whole fabric: [`topology`](Self::topology) plus
    /// [`fabric_config`](Self::fabric_config), both derived from `seed`.
    pub fn fabric(&self, nodes: usize, seed: u64) -> Fabric {
        Fabric::new(self.topology(nodes, seed), self.fabric_config(seed))
    }

    /// The best NIFDY parameters for this network (Table 3 / §2.4.3).
    pub fn nifdy_preset(&self) -> NifdyConfig {
        match self {
            NetworkKind::Mesh2D | NetworkKind::Mesh3D | NetworkKind::AdaptiveMesh2D => {
                NifdyConfig::mesh()
            }
            NetworkKind::Torus2D => NifdyConfig::torus(),
            NetworkKind::FatTree | NetworkKind::Multibutterfly => NifdyConfig::fat_tree(),
            NetworkKind::SfFatTree => NifdyConfig::store_and_forward_fat_tree(),
            NetworkKind::Cm5 => NifdyConfig::cm5(),
            NetworkKind::Butterfly => NifdyConfig::butterfly(),
        }
    }

    /// Whether the underlying network can reorder packets of one pair.
    pub fn reorders(&self) -> bool {
        self.topology(64, 0).reorders()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_build_at_64_nodes() {
        for kind in NetworkKind::ALL {
            let topo = kind.topology(64, 1);
            assert_eq!(topo.num_nodes(), 64, "{}", kind.label());
            let cfg = kind.fabric_config(1);
            assert_eq!(cfg.validate(), Ok(()), "{}", kind.label());
            assert!(cfg.vcs_per_lane >= topo.min_vcs_per_lane());
        }
    }

    #[test]
    fn presets_follow_the_paper() {
        assert_eq!(NetworkKind::Butterfly.nifdy_preset().max_dialogs, 0);
        assert!(
            NetworkKind::SfFatTree.nifdy_preset().window
                > NetworkKind::FatTree.nifdy_preset().window
        );
        assert!(
            NetworkKind::Cm5.nifdy_preset().window <= NetworkKind::FatTree.nifdy_preset().window
        );
    }

    #[test]
    fn reordering_classification() {
        assert!(!NetworkKind::Mesh2D.reorders());
        assert!(!NetworkKind::Butterfly.reorders());
        assert!(NetworkKind::FatTree.reorders());
        assert!(NetworkKind::Multibutterfly.reorders());
        assert!(NetworkKind::Cm5.reorders());
        assert!(NetworkKind::AdaptiveMesh2D.reorders());
    }
}
