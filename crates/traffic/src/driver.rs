//! The simulation driver: one fabric, one NIC and one processor per node,
//! all stepped cycle-synchronously, with global barrier coordination.

use nifdy::{BufferedNic, DeliveryFailure, Nic, NifdyConfig, NifdyUnit, PlainNic};
use nifdy_net::Fabric;
use nifdy_sim::{NodeId, StallWatchdog};

use crate::processor::{NodeWorkload, ProcEvent, Processor};
use crate::SoftwareModel;

/// Which network interface model to attach to every node — the three
/// configurations the paper compares.
#[derive(Debug, Clone, PartialEq)]
pub enum NicChoice {
    /// "No NIFDY": the minimal interface.
    Plain,
    /// "Buffering only": NIFDY's buffer budget without its protocol. The
    /// budget is taken from the given config's
    /// [`total_buffers`](NifdyConfig::total_buffers) so comparisons stay
    /// fair.
    BuffersOnly(NifdyConfig),
    /// The NIFDY unit.
    Nifdy(NifdyConfig),
}

impl NicChoice {
    /// Builds one NIC per node.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn Nic>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn Nic> {
                let node = NodeId::new(i);
                match self {
                    NicChoice::Plain => Box::new(PlainNic::new(node)),
                    NicChoice::BuffersOnly(cfg) => {
                        Box::new(BufferedNic::new(node, cfg.total_buffers()))
                    }
                    NicChoice::Nifdy(cfg) => Box::new(NifdyUnit::new(node, cfg.clone())),
                }
            })
            .collect()
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            NicChoice::Plain => "none",
            NicChoice::BuffersOnly(_) => "buffers",
            NicChoice::Nifdy(_) => "nifdy",
        }
    }
}

/// A complete simulation: fabric, interfaces, processors, workloads.
pub struct Driver {
    fab: Fabric,
    nics: Vec<Box<dyn Nic>>,
    procs: Vec<Processor>,
    wls: Vec<Box<dyn NodeWorkload>>,
    barrier_cost: u64,
    watchdog: Option<StallWatchdog>,
    failures: Vec<DeliveryFailure>,
}

impl Driver {
    /// Assembles a driver. One workload per node, in node order.
    ///
    /// # Panics
    ///
    /// Panics if the number of workloads does not match the fabric's nodes.
    pub fn new(
        fab: Fabric,
        choice: &NicChoice,
        sw: SoftwareModel,
        wls: Vec<Box<dyn NodeWorkload>>,
    ) -> Self {
        let n = fab.num_nodes();
        assert_eq!(wls.len(), n, "need one workload per node");
        let nics = choice.build(n);
        let procs = (0..n).map(|i| Processor::new(NodeId::new(i), sw)).collect();
        Driver {
            fab,
            nics,
            procs,
            wls,
            barrier_cost: 40,
            watchdog: None,
            failures: Vec::new(),
        }
    }

    /// Overrides the cost charged to every node when a barrier releases
    /// (the CM-5's dedicated control network made barriers cheap; default
    /// 40 cycles).
    pub fn with_barrier_cost(mut self, cost: u64) -> Self {
        self.barrier_cost = cost;
        self
    }

    /// Arms a per-node stall watchdog: a NIC that stays busy for `limit`
    /// cycles without its counters moving aborts the run with a panic,
    /// turning a would-be hang into a diagnosable failure. Pick a limit
    /// comfortably above the longest legitimate quiet period (with
    /// retransmission configured, several times the maximum RTO).
    pub fn with_stall_watchdog(mut self, limit: u64) -> Self {
        self.watchdog = Some(StallWatchdog::new(limit, self.nics.len()));
        self
    }

    /// Typed delivery failures surfaced by the interfaces so far (retry
    /// budgets exhausted; see [`DeliveryFailure`]).
    pub fn delivery_failures(&self) -> &[DeliveryFailure] {
        &self.failures
    }

    /// The simulated fabric (topology, time, delivery statistics).
    pub fn fabric(&self) -> &Fabric {
        &self.fab
    }

    /// Per-node processor state and counters.
    pub fn processors(&self) -> &[Processor] {
        &self.procs
    }

    /// Per-node interface counters.
    pub fn nic(&self, node: usize) -> &dyn Nic {
        self.nics[node].as_ref()
    }

    /// Total packets the processors have received.
    pub fn packets_received(&self) -> u64 {
        self.procs.iter().map(|p| p.stats().received.get()).sum()
    }

    /// Total useful payload words received.
    pub fn user_words_received(&self) -> u64 {
        self.procs.iter().map(|p| p.stats().user_words.get()).sum()
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let now = self.fab.now();
        for i in 0..self.procs.len() {
            let ev = self.procs[i].step(self.nics[i].as_mut(), self.wls[i].as_mut(), now);
            debug_assert!(matches!(ev, ProcEvent::None | ProcEvent::EnteredBarrier));
        }
        // Barrier release: every node is blocked in the barrier or done.
        let any_waiting = self.procs.iter().any(|p| p.in_barrier());
        if any_waiting && self.procs.iter().all(|p| p.in_barrier() || p.is_done()) {
            for p in &mut self.procs {
                if p.in_barrier() {
                    p.release_barrier(now, self.barrier_cost);
                }
            }
        }
        for (i, nic) in self.nics.iter_mut().enumerate() {
            nic.step(&mut self.fab);
            self.failures.extend(nic.take_failures());
            if let Some(dog) = &mut self.watchdog {
                let fp = nic.stats().progress_fingerprint();
                if let Some(report) = dog.observe(i, now, fp, !nic.is_idle()) {
                    panic!("stall watchdog tripped: {report}");
                }
            }
        }
        self.fab.step();
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs, invoking `sample` every `period` cycles, for `cycles` total.
    pub fn run_sampled<F: FnMut(&Driver)>(&mut self, cycles: u64, period: u64, mut sample: F) {
        assert!(period > 0, "sampling period must be positive");
        for c in 0..cycles {
            if c % period == 0 {
                sample(self);
            }
            self.step();
        }
    }

    /// Runs until every workload has finished and the network has drained,
    /// or `limit` cycles elapse. Returns `true` on completion.
    pub fn run_until_quiet(&mut self, limit: u64) -> bool {
        while self.fab.now().as_u64() < limit {
            self.step();
            if self.procs.iter().all(|p| p.is_done())
                && self.nics.iter().all(|n| n.is_idle())
                && self.fab.in_network() == 0
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::Action;
    use nifdy::{Delivered, OutboundPacket};
    use nifdy_net::topology::Mesh;
    use nifdy_net::FabricConfig;
    use nifdy_sim::Cycle;

    /// Everyone sends `count` packets to the next node, with one barrier in
    /// the middle.
    struct RingBurst {
        node: usize,
        n: usize,
        sent: u32,
        count: u32,
        did_barrier: bool,
    }

    impl NodeWorkload for RingBurst {
        fn next_action(&mut self, _now: Cycle) -> Action {
            if self.sent == self.count / 2 && !self.did_barrier {
                self.did_barrier = true;
                return Action::Barrier;
            }
            if self.sent < self.count {
                self.sent += 1;
                let dst = NodeId::new((self.node + 1) % self.n);
                Action::Send(OutboundPacket::new(dst, 8))
            } else {
                Action::Done
            }
        }
        fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
    }

    fn ring_driver(choice: NicChoice) -> Driver {
        let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let wls: Vec<Box<dyn NodeWorkload>> = (0..16)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(RingBurst {
                    node: i,
                    n: 16,
                    sent: 0,
                    count: 10,
                    did_barrier: false,
                })
            })
            .collect();
        Driver::new(fab, &choice, SoftwareModel::synthetic(), wls)
    }

    #[test]
    fn nifdy_driver_completes_a_ring_exchange() {
        let mut d = ring_driver(NicChoice::Nifdy(NifdyConfig::mesh()));
        assert!(d.run_until_quiet(3_000_000), "did not drain");
        assert_eq!(d.packets_received(), 160);
        for p in d.processors() {
            assert_eq!(p.stats().barriers.get(), 1);
        }
    }

    #[test]
    fn all_three_nic_choices_complete() {
        for choice in [
            NicChoice::Plain,
            NicChoice::BuffersOnly(NifdyConfig::mesh()),
            NicChoice::Nifdy(NifdyConfig::mesh()),
        ] {
            let mut d = ring_driver(choice.clone());
            assert!(
                d.run_until_quiet(3_000_000),
                "{} did not drain",
                choice.label()
            );
            assert_eq!(d.packets_received(), 160, "{}", choice.label());
        }
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_run() {
        let mut d = ring_driver(NicChoice::Nifdy(NifdyConfig::mesh())).with_stall_watchdog(50_000);
        assert!(d.run_until_quiet(3_000_000), "did not drain");
        assert_eq!(d.packets_received(), 160);
        assert!(d.delivery_failures().is_empty());
    }

    #[test]
    #[should_panic(expected = "stall watchdog tripped")]
    fn watchdog_trips_on_a_genuine_livelock() {
        // Total loss with no retransmission: the sender's OPT entry waits
        // for an ack that can never come. The watchdog converts the hang
        // into a panic.
        let fab = Fabric::new(
            Box::new(Mesh::d2(4, 4)),
            FabricConfig::default().with_drop_prob(1.0),
        );
        let wls: Vec<Box<dyn NodeWorkload>> = (0..16)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(RingBurst {
                    node: i,
                    n: 16,
                    sent: 0,
                    count: 2,
                    did_barrier: true,
                })
            })
            .collect();
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NifdyConfig::mesh()),
            SoftwareModel::synthetic(),
            wls,
        )
        .with_stall_watchdog(5_000);
        let _ = d.run_until_quiet(1_000_000);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(NicChoice::Plain.label(), "none");
        assert_eq!(
            NicChoice::BuffersOnly(NifdyConfig::mesh()).label(),
            "buffers"
        );
        assert_eq!(NicChoice::Nifdy(NifdyConfig::mesh()).label(), "nifdy");
    }
}
