//! The simulation driver: one fabric, one NIC and one processor per node,
//! all stepped cycle-synchronously, with global barrier coordination.

use nifdy::{BufferedNic, DeliveryFailure, Nic, NifdyConfig, NifdyUnit, PlainNic};
use nifdy_net::Fabric;
use nifdy_sim::{Cycle, NodeId, StallWatchdog, Wakeup};
use nifdy_trace::{trace_event, EventKind, MetricsRegistry, TraceHandle};

use crate::processor::{NodeWorkload, ProcEvent, ProcWake, Processor};
use crate::SoftwareModel;

/// How the driver advances simulated time.
///
/// Both engines produce **identical** observable behaviour — delivery
/// orders, statistics, traces, gauges, final clocks. The event engine is
/// purely a performance feature: it skips stretches where every component
/// has declared (via [`Wakeup`]) that stepping would be a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Step every component every cycle (the reference semantics).
    #[default]
    Cycle,
    /// Event-driven skip-ahead: compute the earliest wakeup across NICs,
    /// processors, workloads, the fabric, and the stall watchdog; when
    /// nothing is due, jump the clock to it (batching the empty polls and
    /// gauge samples the skipped cycles would have produced).
    Event,
}

impl Engine {
    /// Parses a CLI-facing engine name (`cycle` / `event`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "cycle" => Some(Engine::Cycle),
            "event" => Some(Engine::Event),
            _ => None,
        }
    }

    /// The CLI-facing name (`cycle` / `event`).
    pub fn label(self) -> &'static str {
        match self {
            Engine::Cycle => "cycle",
            Engine::Event => "event",
        }
    }
}

/// Which network interface model to attach to every node — the three
/// configurations the paper compares.
#[derive(Debug, Clone, PartialEq)]
pub enum NicChoice {
    /// "No NIFDY": the minimal interface.
    Plain,
    /// "Buffering only": NIFDY's buffer budget without its protocol. The
    /// budget is taken from the given config's
    /// [`total_buffers`](NifdyConfig::total_buffers) so comparisons stay
    /// fair.
    BuffersOnly(NifdyConfig),
    /// The NIFDY unit.
    Nifdy(NifdyConfig),
}

impl NicChoice {
    /// Builds one NIC per node.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn Nic>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn Nic> {
                let node = NodeId::new(i);
                match self {
                    NicChoice::Plain => Box::new(PlainNic::new(node)),
                    NicChoice::BuffersOnly(cfg) => {
                        Box::new(BufferedNic::new(node, cfg.total_buffers()))
                    }
                    NicChoice::Nifdy(cfg) => Box::new(NifdyUnit::new(node, cfg.clone())),
                }
            })
            .collect()
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            NicChoice::Plain => "none",
            NicChoice::BuffersOnly(_) => "buffers",
            NicChoice::Nifdy(_) => "nifdy",
        }
    }
}

/// Why a [`Driver`] could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The workload list does not line up with the fabric: every node needs
    /// exactly one workload, in node order.
    WorkloadCountMismatch {
        /// Nodes in the fabric.
        nodes: usize,
        /// Workloads supplied.
        workloads: usize,
    },
    /// [`Driver::with_metrics`] was given a zero sampling period.
    ZeroGaugePeriod,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::WorkloadCountMismatch { nodes, workloads } => write!(
                f,
                "need one workload per node: the fabric has {nodes} nodes \
                 but {workloads} workloads were supplied"
            ),
            BuildError::ZeroGaugePeriod => {
                write!(f, "the gauge sampling period must be positive")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A complete simulation: fabric, interfaces, processors, workloads.
///
/// A driver is `Send`: it owns all of its state (including its trace handle
/// and metrics registry), so whole replicas can be fanned out across worker
/// threads and their recordings merged afterwards
/// ([`nifdy_trace::export::merge_snapshots`], [`MetricsRegistry::merge`]).
pub struct Driver {
    fab: Fabric,
    nics: Vec<Box<dyn Nic>>,
    procs: Vec<Processor>,
    wls: Vec<Box<dyn NodeWorkload>>,
    barrier_cost: u64,
    watchdog: Option<StallWatchdog>,
    failures: Vec<DeliveryFailure>,
    trace: TraceHandle,
    metrics: Option<MetricsRegistry>,
    gauge_period: u64,
    engine: Engine,
    cycles_stepped: u64,
    /// Per-node gate: strictly before this cycle, stepping node `i`'s
    /// processor and NIC is a proven no-op (absent packets waiting for it
    /// in the fabric), so [`step_cycle`](Self::step_cycle) skips them.
    /// Recomputed every time the node actually steps; conservative values
    /// (too early) only cost extra no-op steps.
    node_due: Vec<Cycle>,
}

impl Driver {
    /// Assembles a driver. One workload per node, in node order.
    ///
    /// # Errors
    ///
    /// [`BuildError::WorkloadCountMismatch`] if the number of workloads does
    /// not match the fabric's nodes.
    pub fn new(
        fab: Fabric,
        choice: &NicChoice,
        sw: SoftwareModel,
        wls: Vec<Box<dyn NodeWorkload>>,
    ) -> Result<Self, BuildError> {
        let n = fab.num_nodes();
        if wls.len() != n {
            return Err(BuildError::WorkloadCountMismatch {
                nodes: n,
                workloads: wls.len(),
            });
        }
        let nics = choice.build(n);
        let procs = (0..n).map(|i| Processor::new(NodeId::new(i), sw)).collect();
        Ok(Driver {
            fab,
            nics,
            procs,
            wls,
            barrier_cost: 40,
            watchdog: None,
            failures: Vec::new(),
            trace: TraceHandle::off(),
            metrics: None,
            gauge_period: 1_000,
            engine: Engine::default(),
            cycles_stepped: 0,
            node_due: vec![Cycle::ZERO; n],
        })
    }

    /// Selects the stepping engine (default [`Engine::Cycle`]). The event
    /// engine produces byte-identical results; see [`Engine`].
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The stepping engine in use.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Cycles that were stepped for real (as opposed to skipped by the
    /// event engine). Under [`Engine::Cycle`] this equals elapsed time;
    /// the gap between the two is the event engine's work saved.
    pub fn cycles_stepped(&self) -> u64 {
        self.cycles_stepped
    }

    /// Overrides the cost charged to every node when a barrier releases
    /// (the CM-5's dedicated control network made barriers cheap; default
    /// 40 cycles).
    pub fn with_barrier_cost(mut self, cost: u64) -> Self {
        self.barrier_cost = cost;
        self
    }

    /// Arms a per-node stall watchdog: a NIC that stays busy for `limit`
    /// cycles without its counters moving aborts the run with a panic,
    /// turning a would-be hang into a diagnosable failure. Pick a limit
    /// comfortably above the longest legitimate quiet period (with
    /// retransmission configured, several times the maximum RTO).
    pub fn with_stall_watchdog(mut self, limit: u64) -> Self {
        self.watchdog = Some(StallWatchdog::new(limit, self.nics.len()));
        self
    }

    /// Connects a flight recorder to every layer: the fabric (drop and
    /// delivery events) and each interface (protocol events). The driver
    /// keeps a handle too, so a tripped stall watchdog can dump the wedged
    /// node's recent history into its panic message.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.fab.attach_trace(trace.clone());
        for nic in &mut self.nics {
            nic.attach_trace(trace.clone());
        }
        self.trace = trace;
        self
    }

    /// Streams cycle-sampled occupancy gauges (buffer pool, OPT,
    /// retransmission queue, bulk window, fabric in-flight) into a registry
    /// the driver owns, every `period` cycles. Values are the maximum across
    /// nodes — the congestion signal the paper's admission-control argument
    /// turns on. Read the result with [`metrics`](Self::metrics) or claim it
    /// with [`take_metrics`](Self::take_metrics); merge registries from
    /// parallel replicas with [`MetricsRegistry::merge`].
    ///
    /// # Errors
    ///
    /// [`BuildError::ZeroGaugePeriod`] if `period` is zero.
    pub fn with_metrics(mut self, period: u64) -> Result<Self, BuildError> {
        if period == 0 {
            return Err(BuildError::ZeroGaugePeriod);
        }
        self.metrics = Some(MetricsRegistry::new());
        self.gauge_period = period;
        Ok(self)
    }

    /// The gauge registry filled by [`with_metrics`](Self::with_metrics),
    /// if one was requested.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Takes ownership of the gauge registry (for merging across replicas),
    /// leaving the driver without one.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.take()
    }

    /// The flight-recorder handle attached with [`with_trace`](Self::with_trace)
    /// (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Typed delivery failures surfaced by the interfaces so far (retry
    /// budgets exhausted; see [`DeliveryFailure`]).
    pub fn delivery_failures(&self) -> &[DeliveryFailure] {
        &self.failures
    }

    /// The simulated fabric (topology, time, delivery statistics).
    pub fn fabric(&self) -> &Fabric {
        &self.fab
    }

    /// Per-node processor state and counters.
    pub fn processors(&self) -> &[Processor] {
        &self.procs
    }

    /// Per-node interface counters.
    pub fn nic(&self, node: usize) -> &dyn Nic {
        self.nics[node].as_ref()
    }

    /// Total packets the processors have received.
    pub fn packets_received(&self) -> u64 {
        self.procs.iter().map(|p| p.stats().received.get()).sum()
    }

    /// Total useful payload words received.
    pub fn user_words_received(&self) -> u64 {
        self.procs.iter().map(|p| p.stats().user_words.get()).sum()
    }

    /// Advances the simulation by one cycle.
    ///
    /// A thin wrapper over [`advance`](Self::advance): both engines go
    /// through the same machinery, the cycle engine simply never skips.
    pub fn step(&mut self) {
        let next = self.fab.now() + 1;
        self.advance(next);
    }

    /// Advances simulated time to exactly `until` (no-op when already
    /// there). Under [`Engine::Cycle`] this steps every cycle; under
    /// [`Engine::Event`] quiet stretches are jumped in one burst.
    pub fn advance(&mut self, until: Cycle) {
        while self.fab.now() < until {
            match self.engine {
                Engine::Cycle => self.step_cycle(),
                Engine::Event => self.event_burst(until),
            }
        }
    }

    /// One burst of progress toward `until`: a single stepped cycle, or —
    /// for the event engine — possibly a multi-cycle skip. Always moves
    /// time forward. Used by [`advance`](Self::advance) and by
    /// [`run_until_quiet`](Self::run_until_quiet), which must observe the
    /// simulation between bursts.
    fn advance_burst(&mut self, until: Cycle) {
        match self.engine {
            Engine::Cycle => self.step_cycle(),
            Engine::Event => self.event_burst(until),
        }
    }

    /// Emits one sample of every occupancy gauge, timestamped `at`.
    fn emit_gauges(&mut self, at: Cycle) {
        let Some(reg) = &mut self.metrics else {
            return;
        };
        let mut occ = nifdy::NicOccupancy::default();
        for nic in &self.nics {
            let o = nic.occupancy();
            occ.pool = occ.pool.max(o.pool);
            occ.opt = occ.opt.max(o.opt);
            occ.retx_queue = occ.retx_queue.max(o.retx_queue);
            occ.window_outstanding = occ.window_outstanding.max(o.window_outstanding);
        }
        reg.gauge("occupancy.pool.max", at, f64::from(occ.pool));
        reg.gauge("occupancy.opt.max", at, f64::from(occ.opt));
        reg.gauge("occupancy.retx_queue.max", at, f64::from(occ.retx_queue));
        reg.gauge("occupancy.window.max", at, occ.window_outstanding as f64);
        reg.gauge("fabric.in_flight", at, self.fab.in_network() as f64);
    }

    /// Whether node `i` can be skipped this cycle: its processor is inside
    /// a charged delay, its NIC promised no work before a future wakeup,
    /// and the fabric holds no packets for it. The predicate is stable for
    /// the whole cycle (`node_due` and the ejection queues only change on a
    /// node's own step or the fabric step at the end), so the processor and
    /// NIC loops agree on it.
    #[inline]
    fn node_gated(&self, i: usize, now: Cycle) -> bool {
        self.node_due[i] > now && self.fab.ready_len(NodeId::new(i)) == 0
    }

    /// The reference semantics: step every component through one cycle.
    /// Nodes provably idle this cycle ([`node_gated`](Self::node_gated))
    /// are skipped — their step would be a no-op, so results are
    /// bit-for-bit those of stepping everyone.
    fn step_cycle(&mut self) {
        self.cycles_stepped += 1;
        let now = self.fab.now();
        if self.metrics.is_some() && now.as_u64().is_multiple_of(self.gauge_period) {
            self.emit_gauges(now);
        }
        // A due stall deadline disables gating for the cycle: the watchdog
        // only accrues observations on stepped nodes, so the firing cycle
        // must step (and thus observe) everyone, exactly like the ungated
        // engine would.
        let dog_due = self
            .watchdog
            .as_ref()
            .and_then(StallWatchdog::next_deadline)
            .is_some_and(|t| t <= now);
        for i in 0..self.procs.len() {
            if !dog_due && self.node_gated(i, now) {
                continue;
            }
            let ev = self.procs[i].step(self.nics[i].as_mut(), self.wls[i].as_mut(), now);
            debug_assert!(matches!(ev, ProcEvent::None | ProcEvent::EnteredBarrier));
        }
        // Barrier release: every node is blocked in the barrier or done.
        let any_waiting = self.procs.iter().any(|p| p.in_barrier());
        if any_waiting && self.procs.iter().all(|p| p.in_barrier() || p.is_done()) {
            for (i, p) in self.procs.iter_mut().enumerate() {
                if p.in_barrier() {
                    p.release_barrier(now, self.barrier_cost);
                    // The release rewrote the processor's delay out from
                    // under the gate; re-arm it conservatively.
                    self.node_due[i] = now;
                }
            }
        }
        for (i, nic) in self.nics.iter_mut().enumerate() {
            if !dog_due && self.node_due[i] > now && self.fab.ready_len(NodeId::new(i)) == 0 {
                continue;
            }
            nic.step(&mut self.fab);
            self.failures.extend(nic.take_failures());
            if let Some(dog) = &mut self.watchdog {
                let fp = nic.stats().progress_fingerprint();
                if let Some(report) = dog.observe(i, now, fp, !nic.is_idle()) {
                    let node = NodeId::new(i);
                    trace_event!(
                        self.trace,
                        now,
                        node,
                        EventKind::WatchdogFire {
                            unit: report.unit as u32,
                            since: report.since,
                            fingerprint: report.fingerprint,
                        }
                    );
                    let dump = flight_recorder_dump(&self.trace, node);
                    panic!("stall watchdog tripped: {report}{dump}");
                }
            }
            // Both layers just ran; their own wakeups say when the node can
            // next matter. `Now` and past deadlines mean "again next cycle".
            let nic_due = match nic.next_event(now) {
                Wakeup::Now => now + 1,
                Wakeup::At(t) => t.max(now + 1),
                Wakeup::Quiescent => Cycle::MAX,
            };
            self.node_due[i] = self.procs[i].next_due().min(nic_due);
        }
        self.fab.step();
    }

    /// One event-engine burst toward `until` (which must be in the
    /// future): steps the next cycle for real when anything could do
    /// observable work, otherwise jumps the clock to the earliest wakeup.
    ///
    /// The skip is sound because every component's [`Wakeup`] answer is a
    /// promise that stepping it before the wakeup is a no-op absent new
    /// input — and inside the window there is no new input: the fabric is
    /// empty (else it reports `Now`), no NIC acts, and the only processor
    /// activity is empty polling, which is replayed in batch.
    fn event_burst(&mut self, until: Cycle) {
        let now = self.fab.now();
        debug_assert!(now < until);
        // An active fabric (worms in flight or packets awaiting ejection)
        // can make progress every cycle.
        if self.fab.next_event().is_due(now) {
            self.step_cycle();
            return;
        }
        // Barrier release is a driver-level event: it fires the first
        // cycle every participant is blocked or done.
        let any_waiting = self.procs.iter().any(|p| p.in_barrier());
        if any_waiting && self.procs.iter().all(|p| p.in_barrier() || p.is_done()) {
            self.step_cycle();
            return;
        }
        let mut wake = Wakeup::Quiescent;
        for nic in &self.nics {
            wake = wake.earliest(nic.next_event(now));
        }
        let mut any_polling = false;
        for (i, p) in self.procs.iter().enumerate() {
            match p.classify(self.nics[i].as_ref(), self.wls[i].as_ref(), now) {
                ProcWake::Step => {
                    self.step_cycle();
                    return;
                }
                ProcWake::Busy(t) => wake = wake.earliest(Wakeup::At(t)),
                ProcWake::Polling(deadline) => {
                    any_polling = true;
                    if let Some(t) = deadline {
                        wake = wake.earliest(Wakeup::At(t));
                    }
                }
            }
        }
        // Stall-detection deadlines are explicit wakeups: a wedged node is
        // caught at the same cycle the per-cycle engine would catch it.
        if let Some(dog) = &self.watchdog {
            if let Some(t) = dog.next_deadline() {
                wake = wake.earliest(Wakeup::at_or_now(t, now));
            }
        }
        if wake.is_due(now) {
            self.step_cycle();
            return;
        }
        // Nothing observable happens in [now, t): replay the empty polls,
        // emit the gauges the skipped cycles would have sampled (their
        // inputs are frozen across the window), and jump.
        let t = wake.deadline_or(now, until);
        debug_assert!(t > now);
        if any_polling {
            for p in &mut self.procs {
                p.batch_idle_polls(now, t);
            }
        }
        if self.metrics.is_some() {
            let period = self.gauge_period;
            let mut m = now.as_u64().next_multiple_of(period);
            while m < t.as_u64() {
                self.emit_gauges(Cycle::new(m));
                m += period;
            }
        }
        self.fab.advance_to(t);
    }

    /// Whether every workload has finished and the network has drained.
    fn is_quiet(&self) -> bool {
        self.procs.iter().all(|p| p.is_done())
            && self.nics.iter().all(|n| n.is_idle())
            && self.fab.in_network() == 0
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        let until = self.fab.now() + cycles;
        self.advance(until);
    }

    /// Runs, invoking `sample` every `period` cycles, for `cycles` total.
    pub fn run_sampled<F: FnMut(&Driver)>(&mut self, cycles: u64, period: u64, mut sample: F) {
        assert!(period > 0, "sampling period must be positive");
        let start = self.fab.now();
        let mut c = 0;
        while c < cycles {
            self.advance(start + c);
            sample(self);
            c += period;
        }
        self.advance(start + cycles);
    }

    /// Runs until every workload has finished and the network has drained,
    /// or `limit` cycles elapse. Returns `true` on completion.
    ///
    /// Both engines return with the same final clock: quiescence is
    /// observed after a stepped cycle, and event-engine bursts only skip
    /// windows in which the quiet predicate cannot change.
    pub fn run_until_quiet(&mut self, limit: u64) -> bool {
        if self.fab.now().as_u64() < limit && self.is_quiet() {
            // Already quiet on entry: the cycle engine still steps once
            // before observing it, so match that clock.
            self.step();
            return true;
        }
        while self.fab.now().as_u64() < limit {
            self.advance_burst(Cycle::new(limit));
            if self.is_quiet() {
                return true;
            }
        }
        false
    }
}

/// Formats the wedged node's recent flight-recorder history (oldest first)
/// for a stall-watchdog panic message. Empty when no recorder is attached.
fn flight_recorder_dump(trace: &TraceHandle, node: NodeId) -> String {
    const DUMP_EVENTS: usize = 32;
    let events = trace.last_events(node, DUMP_EVENTS);
    if events.is_empty() {
        return String::new();
    }
    let mut s = format!("\nflight recorder, node {node} (oldest first):");
    for ev in &events {
        s.push_str("\n  ");
        s.push_str(&ev.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::Action;
    use nifdy::{Delivered, OutboundPacket};
    use nifdy_net::topology::Mesh;
    use nifdy_net::FabricConfig;
    use nifdy_sim::Cycle;

    /// Everyone sends `count` packets to the next node, with one barrier in
    /// the middle.
    struct RingBurst {
        node: usize,
        n: usize,
        sent: u32,
        count: u32,
        did_barrier: bool,
    }

    impl NodeWorkload for RingBurst {
        fn next_action(&mut self, _now: Cycle) -> Action {
            if self.sent == self.count / 2 && !self.did_barrier {
                self.did_barrier = true;
                return Action::Barrier;
            }
            if self.sent < self.count {
                self.sent += 1;
                let dst = NodeId::new((self.node + 1) % self.n);
                Action::Send(OutboundPacket::new(dst, 8))
            } else {
                Action::Done
            }
        }
        fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
    }

    fn ring_driver(choice: NicChoice) -> Driver {
        let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let wls: Vec<Box<dyn NodeWorkload>> = (0..16)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(RingBurst {
                    node: i,
                    n: 16,
                    sent: 0,
                    count: 10,
                    did_barrier: false,
                })
            })
            .collect();
        Driver::new(fab, &choice, SoftwareModel::synthetic(), wls).expect("one workload per node")
    }

    #[test]
    fn nifdy_driver_completes_a_ring_exchange() {
        let mut d = ring_driver(NicChoice::Nifdy(NifdyConfig::mesh()));
        assert!(d.run_until_quiet(3_000_000), "did not drain");
        assert_eq!(d.packets_received(), 160);
        for p in d.processors() {
            assert_eq!(p.stats().barriers.get(), 1);
        }
    }

    #[test]
    fn all_three_nic_choices_complete() {
        for choice in [
            NicChoice::Plain,
            NicChoice::BuffersOnly(NifdyConfig::mesh()),
            NicChoice::Nifdy(NifdyConfig::mesh()),
        ] {
            let mut d = ring_driver(choice.clone());
            assert!(
                d.run_until_quiet(3_000_000),
                "{} did not drain",
                choice.label()
            );
            assert_eq!(d.packets_received(), 160, "{}", choice.label());
        }
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_run() {
        let mut d = ring_driver(NicChoice::Nifdy(NifdyConfig::mesh())).with_stall_watchdog(50_000);
        assert!(d.run_until_quiet(3_000_000), "did not drain");
        assert_eq!(d.packets_received(), 160);
        assert!(d.delivery_failures().is_empty());
    }

    #[test]
    #[should_panic(expected = "stall watchdog tripped")]
    fn watchdog_trips_on_a_genuine_livelock() {
        // Total loss with no retransmission: the sender's OPT entry waits
        // for an ack that can never come. The watchdog converts the hang
        // into a panic.
        let fab = Fabric::new(
            Box::new(Mesh::d2(4, 4)),
            FabricConfig::default().with_drop_prob(1.0),
        );
        let wls: Vec<Box<dyn NodeWorkload>> = (0..16)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(RingBurst {
                    node: i,
                    n: 16,
                    sent: 0,
                    count: 2,
                    did_barrier: true,
                })
            })
            .collect();
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NifdyConfig::mesh()),
            SoftwareModel::synthetic(),
            wls,
        )
        .expect("workload count matches")
        .with_stall_watchdog(5_000);
        let _ = d.run_until_quiet(1_000_000);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn attached_recorder_captures_protocol_events() {
        use nifdy_trace::TraceConfig;

        let trace = TraceHandle::recording(TraceConfig::default());
        let mut d = ring_driver(NicChoice::Nifdy(NifdyConfig::mesh()))
            .with_trace(trace.clone())
            .with_metrics(100)
            .expect("nonzero period");
        assert!(d.run_until_quiet(3_000_000), "did not drain");

        let events = trace.snapshot();
        assert!(!events.is_empty(), "recorder saw nothing");
        let names: std::collections::BTreeSet<&str> =
            events.iter().map(|e| e.kind.name()).collect();
        for expected in [
            "scalar_send",
            "opt_insert",
            "opt_clear",
            "ack_send",
            "deliver",
        ] {
            assert!(names.contains(expected), "missing {expected} in {names:?}");
        }
        // Cycle-sampled gauges made it into the driver-owned registry.
        let json = d.metrics().expect("registry attached").to_json();
        let rendered = json.render();
        assert!(rendered.contains("occupancy.opt.max"), "{rendered}");
        assert!(rendered.contains("fabric.in_flight"), "{rendered}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn watchdog_panic_carries_a_flight_recorder_dump() {
        use nifdy_trace::TraceConfig;

        let fab = Fabric::new(
            Box::new(Mesh::d2(4, 4)),
            FabricConfig::default().with_drop_prob(1.0),
        );
        let wls: Vec<Box<dyn NodeWorkload>> = (0..16)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(RingBurst {
                    node: i,
                    n: 16,
                    sent: 0,
                    count: 2,
                    did_barrier: true,
                })
            })
            .collect();
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NifdyConfig::mesh()),
            SoftwareModel::synthetic(),
            wls,
        )
        .expect("workload count matches")
        .with_stall_watchdog(5_000)
        .with_trace(TraceHandle::recording(TraceConfig::default()));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = d.run_until_quiet(1_000_000);
        }))
        .expect_err("watchdog must trip under total loss");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.starts_with("stall watchdog tripped"), "{msg}");
        assert!(msg.contains("flight recorder"), "{msg}");
        assert!(msg.contains("ScalarSend"), "{msg}");
        assert!(msg.contains("EligStall"), "{msg}");
    }

    #[test]
    fn build_errors_are_typed() {
        let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let err = Driver::new(
            fab,
            &NicChoice::Plain,
            SoftwareModel::synthetic(),
            Vec::new(),
        )
        .map(drop)
        .expect_err("0 workloads for 16 nodes must not build");
        assert_eq!(
            err,
            BuildError::WorkloadCountMismatch {
                nodes: 16,
                workloads: 0
            }
        );
        let err = ring_driver(NicChoice::Plain)
            .with_metrics(0)
            .map(drop)
            .expect_err("period 0 must be rejected");
        assert_eq!(err, BuildError::ZeroGaugePeriod);
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn drivers_move_across_threads() {
        // The whole point of owned trace/metrics state: a replica can run on
        // a worker thread.
        fn assert_send<T: Send>() {}
        assert_send::<Driver>();
        let d = ring_driver(NicChoice::Nifdy(NifdyConfig::mesh()));
        let received = std::thread::spawn(move || {
            let mut d = d;
            assert!(d.run_until_quiet(3_000_000), "did not drain");
            d.packets_received()
        })
        .join()
        .expect("worker panicked");
        assert_eq!(received, 160);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(NicChoice::Plain.label(), "none");
        assert_eq!(
            NicChoice::BuffersOnly(NifdyConfig::mesh()).label(),
            "buffers"
        );
        assert_eq!(NicChoice::Nifdy(NifdyConfig::mesh()).label(), "nifdy");
    }
}
