//! Open-loop (rate-controlled) uniform-random traffic, used to trace the
//! throughput/latency curve of §1's *operating range* argument:
//! "Interconnection networks deliver maximum performance when the offered
//! load is limited to a fraction of the maximum bandwidth ... when the
//! offered load exceeds the operating range, throughput falls off
//! dramatically."
//!
//! Each node offers one single-packet message to a uniformly random
//! destination every `interval` cycles. When the interface refuses a packet
//! the processor retries (the source queue backs up), so saturation shows
//! up as a throughput plateau plus a latency blow-up.

use nifdy::{Delivered, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::{Cycle, NodeId, SimRng};

use crate::processor::{Action, NodeWorkload};

/// Configuration for the open-loop pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConfig {
    /// Cycles between successive send attempts per node (1/rate).
    pub interval: u64,
    /// Wire packet size in words.
    pub packet_words: u16,
    /// Base seed (per-node streams derived from it).
    pub seed: u64,
}

impl OpenLoopConfig {
    /// Uniform-random single-packet traffic at one packet per `interval`
    /// cycles per node.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64, seed: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        OpenLoopConfig {
            interval,
            packet_words: 8,
            seed,
        }
    }

    /// Builds the per-node workloads.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn NodeWorkload>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(OpenLoop {
                    cfg: *self,
                    node: NodeId::new(i),
                    num_nodes,
                    rng: SimRng::from_seed_stream(self.seed, i as u64),
                    next_due: (i as u64 * 7) % self.interval, // desynchronize
                    offered: 0,
                })
            })
            .collect()
    }
}

/// Per-node open-loop generator.
#[derive(Debug)]
pub struct OpenLoop {
    cfg: OpenLoopConfig,
    node: NodeId,
    num_nodes: usize,
    rng: SimRng,
    next_due: u64,
    offered: u64,
}

impl OpenLoop {
    /// Packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }
}

impl NodeWorkload for OpenLoop {
    fn next_action(&mut self, now: Cycle) -> Action {
        if now.as_u64() < self.next_due {
            return Action::Compute(self.next_due - now.as_u64());
        }
        self.next_due += self.cfg.interval;
        self.offered += 1;
        let mut dst = self.rng.gen_range_usize(0..self.num_nodes - 1);
        if dst >= self.node.index() {
            dst += 1;
        }
        Action::Send(
            OutboundPacket::new(NodeId::new(dst), self.cfg.packet_words).with_user(UserData {
                msg_id: self.offered,
                pkt_index: 0,
                msg_packets: 1,
                user_words: self.cfg.packet_words - 1,
            }),
        )
    }

    fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Driver, NicChoice};
    use crate::SoftwareModel;
    use nifdy::NifdyConfig;
    use nifdy_net::topology::Mesh;
    use nifdy_net::{Fabric, FabricConfig};

    #[test]
    fn rate_is_respected_when_unloaded() {
        let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let cfg = OpenLoopConfig::new(500, 3);
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NifdyConfig::mesh()),
            SoftwareModel::synthetic(),
            cfg.build(16),
        )
        .expect("driver builds");
        d.run_cycles(20_000);
        let delivered = d.packets_received();
        // 16 nodes * 20000/500 = 640 offered; nearly all should arrive.
        assert!(
            (500..=640).contains(&delivered),
            "unloaded open loop delivered {delivered}"
        );
    }

    #[test]
    fn saturation_caps_throughput() {
        let run = |interval: u64| {
            let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
            let cfg = OpenLoopConfig::new(interval, 3);
            let mut d = Driver::new(
                fab,
                &NicChoice::Plain,
                SoftwareModel::synthetic(),
                cfg.build(16),
            )
            .expect("driver builds");
            d.run_cycles(30_000);
            d.packets_received()
        };
        let slow = run(400);
        let fast = run(25);
        // 16x the offered load cannot produce 16x the throughput.
        assert!(fast < slow * 12, "no saturation visible: {fast} vs {slow}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = OpenLoopConfig::new(0, 1);
    }
}
