//! Software overhead models (Table 2 and §2.4.3 of the paper).
//!
//! The paper calibrated its simulator against a real CM-5: "we ran several
//! tests on a real CM-5 to estimate packet sending and receiving overheads
//! as well as CM-5 network latency and bandwidth. These parameters,
//! summarized in Table 2, agree closely with those reported in [vE93]."
//! For the worked parameter examples of §2.4.3 the paper assumes
//! `T_send = 40` and `T_receive = 60` cycles, with 2 cycles of NIFDY
//! processing per ack end.

/// Measured CM-5 Active Message costs (Table 2), in processor cycles.
pub mod table2 {
    /// Active message send.
    pub const AM_SEND: u64 = 33;
    /// Active message poll when no message is pending.
    pub const AM_POLL_EMPTY: u64 = 22;
    /// Active message receive (dispatch, handle, return).
    pub const AM_RECEIVE: u64 = 50;
    /// One-way latency including software, from send to the beginning of
    /// the handler.
    pub const ONE_WAY_LATENCY: u64 = 95;
}

/// Per-packet software costs plus the packetization rules a messaging layer
/// implies.
///
/// The `reorder_in_software` flag models the §2.2 / §4.4 distinction: on a
/// network that can reorder packets, a library *not* backed by NIFDY's
/// in-order delivery pays extra receive overhead to reconstruct order
/// (\[KC94\] measured up to 30% of transfer time) and must tag every packet
/// with bookkeeping words, reducing payload.
///
/// # Examples
///
/// ```
/// use nifdy_traffic::SoftwareModel;
///
/// let plain = SoftwareModel::cm5_library(true);   // software reordering
/// let nifdy = SoftwareModel::cm5_library(false);  // NIFDY delivers in order
/// assert!(nifdy.t_receive < plain.t_receive);
/// assert!(nifdy.payload_words_per_packet() > plain.payload_words_per_packet());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareModel {
    /// Cycles the processor spends sending one packet.
    pub t_send: u64,
    /// Cycles to receive one packet (dispatch, handle, return).
    pub t_receive: u64,
    /// Cycles for an unsuccessful poll.
    pub t_poll: u64,
    /// Total packet size on the wire, in words (header included).
    pub packet_words: u16,
    /// Bookkeeping words each packet must carry when the library cannot
    /// rely on in-order delivery (sequence/offset tags).
    pub bookkeeping_words: u16,
    /// Whether the library reorders packets in software (no NIFDY on a
    /// reordering network).
    pub reorder_in_software: bool,
}

impl SoftwareModel {
    /// The synthetic-workload model of §4.1: 8-word packets, the §2.4.3
    /// overhead assumptions.
    pub fn synthetic() -> Self {
        SoftwareModel {
            t_send: 40,
            t_receive: 60,
            t_poll: 22,
            packet_words: 8,
            bookkeeping_words: 2,
            reorder_in_software: false,
        }
    }

    /// The CMAM/Split-C library model used by the C-shift, EM3D and radix
    /// workloads: 6-word packets, Table 2 overheads.
    ///
    /// With `reorder_in_software`, receive costs grow by the \[KC94\]
    /// reordering share and every packet loses bookkeeping payload.
    pub fn cm5_library(reorder_in_software: bool) -> Self {
        let base = table2::AM_RECEIVE;
        SoftwareModel {
            t_send: table2::AM_SEND,
            // Software reordering adds ~30% to receive processing [KC94].
            t_receive: if reorder_in_software {
                base * 13 / 10
            } else {
                base
            },
            t_poll: table2::AM_POLL_EMPTY,
            packet_words: 6,
            bookkeeping_words: 2,
            reorder_in_software,
        }
    }

    /// Useful payload words one packet carries under this model (header word
    /// excluded; bookkeeping excluded when reordering in software).
    pub fn payload_words_per_packet(&self) -> u16 {
        let header = 1;
        let book = if self.reorder_in_software {
            self.bookkeeping_words
        } else {
            0
        };
        self.packet_words - header - book
    }

    /// Exact per-packet payload split for a message of `user_words` words:
    /// without in-order delivery every packet carries up to
    /// [`payload_words_per_packet`](Self::payload_words_per_packet); with it,
    /// the first packet also carries the message bookkeeping and later
    /// packets are pure payload.
    ///
    /// The returned vector sums to `user_words` and its length equals
    /// [`packets_for_message`](Self::packets_for_message).
    ///
    /// # Panics
    ///
    /// Panics if `user_words` is zero.
    pub fn packet_payloads(&self, user_words: u32) -> Vec<u16> {
        assert!(user_words > 0, "messages must carry some payload");
        let per = u32::from(self.payload_words_per_packet());
        let mut left = user_words;
        let mut out = Vec::new();
        if !self.reorder_in_software {
            let first = u32::from(self.packet_words - 1 - self.bookkeeping_words);
            let take = left.min(first);
            out.push(take as u16);
            left -= take;
        }
        while left > 0 {
            let take = left.min(per);
            out.push(take as u16);
            left -= take;
        }
        out
    }

    /// Number of packets a message of `user_words` payload words requires.
    /// In-order delivery lets every packet after the first carry pure data
    /// (§2.2: "later packets need not include any bookkeeping information");
    /// the first packet always carries the message header/bookkeeping.
    ///
    /// # Examples
    ///
    /// ```
    /// use nifdy_traffic::SoftwareModel;
    ///
    /// let with = SoftwareModel::cm5_library(false);
    /// let without = SoftwareModel::cm5_library(true);
    /// // A 60-word transfer: 5 words/pkt in order vs 3 words/pkt without.
    /// assert_eq!(with.packets_for_message(60), 13);
    /// assert_eq!(without.packets_for_message(60), 20);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `user_words` is zero.
    pub fn packets_for_message(&self, user_words: u32) -> u32 {
        assert!(user_words > 0, "messages must carry some payload");
        let per = u32::from(self.payload_words_per_packet());
        if self.reorder_in_software {
            user_words.div_ceil(per)
        } else {
            // First packet initializes the destination (bookkeeping), the
            // rest are pure payload.
            let first = u32::from(self.packet_words - 1 - self.bookkeeping_words);
            if user_words <= first {
                1
            } else {
                1 + (user_words - first).div_ceil(per)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants_are_the_measured_cm5_costs() {
        // Encoded in consts so regressions in the constants themselves are
        // caught at compile time.
        const _: () = assert!(table2::AM_SEND < table2::AM_RECEIVE);
        const _: () = assert!(table2::ONE_WAY_LATENCY > table2::AM_RECEIVE);
        assert_eq!(table2::AM_POLL_EMPTY, 22);
    }

    #[test]
    fn in_order_library_is_cheaper_and_denser() {
        let with = SoftwareModel::cm5_library(false);
        let without = SoftwareModel::cm5_library(true);
        assert!(with.t_receive < without.t_receive);
        assert_eq!(with.payload_words_per_packet(), 5);
        assert_eq!(without.payload_words_per_packet(), 3);
    }

    #[test]
    fn packet_counts_shrink_with_in_order_delivery() {
        let with = SoftwareModel::cm5_library(false);
        let without = SoftwareModel::cm5_library(true);
        for words in [1u32, 3, 5, 15, 60, 100] {
            assert!(
                with.packets_for_message(words) <= without.packets_for_message(words),
                "words={words}"
            );
        }
        assert_eq!(with.packets_for_message(3), 1);
        assert_eq!(with.packets_for_message(9), 3); // 3 + 5 + 1
    }

    #[test]
    #[should_panic(expected = "payload")]
    fn zero_word_messages_rejected() {
        let _ = SoftwareModel::synthetic().packets_for_message(0);
    }
}
