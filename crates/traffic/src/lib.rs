//! Workloads and processor models for evaluating NIFDY.
//!
//! This crate reproduces the traffic side of the paper's evaluation:
//!
//! * [`SoftwareModel`] — the measured CM-5 software overheads (Table 2) and
//!   the packetization rules that give NIFDY its in-order payload benefit,
//! * [`Processor`] — a polling processor ("only polling message reception is
//!   allowed") driving any [`Nic`](nifdy::Nic) through a [`NodeWorkload`],
//! * [`Driver`] — the cycle-synchronous simulation loop with global
//!   barriers — fully owned state, so replicas are `Send` and can be fanned
//!   out across threads,
//! * [`Scenario`] — a builder assembling network kind, NIC choice, software
//!   model, and workload factory into a ready driver,
//! * [`NetworkKind`] — the catalog of simulated networks (§3 / Table 3),
//! * workloads: synthetic heavy/light bursts (§4.1), the cyclic shift
//!   (§4.3), EM3D (§4.4), and radix-sort scan/coalesce (§4.5).
//!
//! # Examples
//!
//! Running the heavy synthetic pattern over a mesh with NIFDY:
//!
//! ```
//! use nifdy_traffic::{NetworkKind, NicChoice, Scenario, SyntheticConfig};
//!
//! let kind = NetworkKind::Mesh2D;
//! let mut driver = Scenario::new(kind)
//!     .nodes(16)
//!     .seed(42)
//!     .nic(NicChoice::Nifdy(kind.nifdy_preset()))
//!     .build_with(|sc| SyntheticConfig::heavy(sc.seed()).build(sc.nodes()))
//!     .unwrap();
//! driver.run_cycles(20_000);
//! assert!(driver.packets_received() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cshift;
mod driver;
mod em3d;
mod network;
mod openloop;
mod overheads;
mod processor;
mod radix;
mod scenario;
mod synthetic;

pub use cshift::{CShift, CShiftConfig};
pub use driver::{BuildError, Driver, Engine, NicChoice};
pub use em3d::{Em3d, Em3dParams, Em3dPlan};
pub use network::NetworkKind;
pub use openloop::{OpenLoop, OpenLoopConfig};
pub use overheads::{table2, SoftwareModel};
pub use processor::{Action, NodeWorkload, ProcEvent, ProcStats, Processor};
pub use radix::{Coalesce, CoalesceConfig, Scan, ScanConfig};
pub use scenario::{Scenario, ScenarioView};
pub use synthetic::{Synthetic, SyntheticConfig};
