//! Workloads and processor models for evaluating NIFDY.
//!
//! This crate reproduces the traffic side of the paper's evaluation:
//!
//! * [`SoftwareModel`] — the measured CM-5 software overheads (Table 2) and
//!   the packetization rules that give NIFDY its in-order payload benefit,
//! * [`Processor`] — a polling processor ("only polling message reception is
//!   allowed") driving any [`Nic`](nifdy::Nic) through a [`NodeWorkload`],
//! * [`Driver`] — the cycle-synchronous simulation loop with global
//!   barriers,
//! * workloads: synthetic heavy/light bursts (§4.1), the cyclic shift
//!   (§4.3), EM3D (§4.4), and radix-sort scan/coalesce (§4.5).
//!
//! # Examples
//!
//! Running the heavy synthetic pattern over a mesh with NIFDY:
//!
//! ```
//! use nifdy::NifdyConfig;
//! use nifdy_net::topology::Mesh;
//! use nifdy_net::{Fabric, FabricConfig};
//! use nifdy_traffic::{Driver, NicChoice, SoftwareModel, SyntheticConfig};
//!
//! let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
//! let wls = SyntheticConfig::heavy(42).build(16);
//! let mut driver = Driver::new(
//!     fab,
//!     &NicChoice::Nifdy(NifdyConfig::mesh()),
//!     SoftwareModel::synthetic(),
//!     wls,
//! );
//! driver.run_cycles(20_000);
//! assert!(driver.packets_received() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cshift;
mod driver;
mod em3d;
mod openloop;
mod overheads;
mod processor;
mod radix;
mod synthetic;

pub use cshift::{CShift, CShiftConfig};
pub use driver::{Driver, NicChoice};
pub use em3d::{Em3d, Em3dParams, Em3dPlan};
pub use openloop::{OpenLoop, OpenLoopConfig};
pub use overheads::{table2, SoftwareModel};
pub use processor::{Action, NodeWorkload, ProcEvent, ProcStats, Processor};
pub use radix::{Coalesce, CoalesceConfig, Scan, ScanConfig};
pub use synthetic::{Synthetic, SyntheticConfig};
