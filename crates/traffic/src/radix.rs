//! Radix sort (§4.5), after Dusseau's LogP study [Dus94].
//!
//! Each iteration of the sort has two communication phases:
//!
//! * **Scan**: "a scan addition is performed across all processors for each
//!   bucket; this involves nearest-neighbor communication." Processor `i`
//!   receives running bucket sums from `i − 1`, adds its own counts, and
//!   forwards to `i + 1` — one single-packet message per bucket. "The most
//!   notable feature is that the overall communication phase runs faster if
//!   delays are inserted between successive sends. Without delays, the
//!   sends from one processor cause the next processor in the pipeline to
//!   continually receive with no chance to send, serializing the entire
//!   scan."
//! * **Coalesce**: every key is sent to its destination processor as a
//!   single-packet message to an effectively random destination.

use std::collections::VecDeque;

use nifdy::{Delivered, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::{Cycle, NodeId, SimRng, Wakeup};

use crate::processor::{Action, NodeWorkload};
use crate::SoftwareModel;

/// Configuration of the scan phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanConfig {
    /// Number of buckets (an 8-bit radix gives 256).
    pub buckets: u32,
    /// Cycles of artificial delay inserted between consecutive sends
    /// (the "With Delay" bars of Figure 9); 0 disables.
    pub delay_between_sends: u64,
    /// Messaging-layer model.
    pub sw: SoftwareModel,
}

impl ScanConfig {
    /// An 8-bit-radix scan, as in Figure 9.
    pub fn radix8(sw: SoftwareModel) -> Self {
        ScanConfig {
            buckets: 256,
            delay_between_sends: 0,
            sw,
        }
    }

    /// Sets the inter-send delay.
    pub fn with_delay(mut self, cycles: u64) -> Self {
        self.delay_between_sends = cycles;
        self
    }

    /// Builds the pipeline workloads for `num_nodes` processors.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn NodeWorkload>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(Scan::new(*self, NodeId::new(i), num_nodes))
            })
            .collect()
    }
}

/// Per-node scan-pipeline state.
#[derive(Debug)]
pub struct Scan {
    cfg: ScanConfig,
    node: NodeId,
    num_nodes: usize,
    /// Buckets ready to forward (node 0 starts with all of them).
    ready: VecDeque<u32>,
    sent: u32,
    received: u32,
    delayed: bool,
}

impl Scan {
    /// Creates the scan stage for one node.
    pub fn new(cfg: ScanConfig, node: NodeId, num_nodes: usize) -> Self {
        let ready = if node.index() == 0 {
            (0..cfg.buckets).collect()
        } else {
            VecDeque::new()
        };
        Scan {
            cfg,
            node,
            num_nodes,
            ready,
            sent: 0,
            received: 0,
            delayed: false,
        }
    }

    fn is_last(&self) -> bool {
        self.node.index() + 1 == self.num_nodes
    }

    fn finished(&self) -> bool {
        if self.is_last() {
            self.received == self.cfg.buckets
        } else {
            self.sent == self.cfg.buckets
        }
    }
}

impl NodeWorkload for Scan {
    fn next_action(&mut self, _now: Cycle) -> Action {
        if self.finished() {
            return Action::Done;
        }
        if self.is_last() || self.ready.is_empty() {
            return Action::Idle;
        }
        if self.cfg.delay_between_sends > 0 && !self.delayed {
            self.delayed = true;
            return Action::Compute(self.cfg.delay_between_sends);
        }
        self.delayed = false;
        let bucket = self.ready.pop_front().expect("nonempty");
        self.sent += 1;
        Action::Send(
            OutboundPacket::new(NodeId::new(self.node.index() + 1), self.cfg.sw.packet_words)
                .with_user(UserData {
                    msg_id: u64::from(bucket),
                    pkt_index: 0,
                    msg_packets: 1,
                    user_words: 1,
                }),
        )
    }

    fn on_receive(&mut self, pkt: &Delivered, _now: Cycle) {
        self.received += 1;
        if !self.is_last() {
            // Add the local count and forward the running sum.
            self.ready.push_back(pkt.user.msg_id as u32);
        }
    }

    fn next_event(&self, _now: Cycle) -> Wakeup {
        // The idle phase (waiting for the predecessor's running sum) is
        // purely reactive: `next_action` returns `Idle` without side
        // effects until `on_receive` queues a bucket. Everything else —
        // including a finished script that still has to report `Done` —
        // wants a call now.
        if !self.finished() && (self.is_last() || self.ready.is_empty()) {
            Wakeup::Quiescent
        } else {
            Wakeup::Now
        }
    }
}

/// Configuration of the coalesce phase: keys to random destinations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalesceConfig {
    /// Keys each processor holds (one single-packet message per key).
    pub keys_per_node: u32,
    /// Seed for the random key distribution.
    pub seed: u64,
    /// Messaging-layer model.
    pub sw: SoftwareModel,
}

impl CoalesceConfig {
    /// Builds the coalesce workloads.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn NodeWorkload>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(Coalesce {
                    cfg: *self,
                    node: NodeId::new(i),
                    num_nodes,
                    rng: SimRng::from_seed_stream(self.seed, i as u64),
                    sent: 0,
                })
            })
            .collect()
    }
}

/// Per-node coalesce state.
#[derive(Debug)]
pub struct Coalesce {
    cfg: CoalesceConfig,
    node: NodeId,
    num_nodes: usize,
    rng: SimRng,
    sent: u32,
}

impl NodeWorkload for Coalesce {
    fn next_action(&mut self, _now: Cycle) -> Action {
        if self.sent >= self.cfg.keys_per_node {
            return Action::Done;
        }
        let mut dst = self.rng.gen_range_usize(0..self.num_nodes - 1);
        if dst >= self.node.index() {
            dst += 1;
        }
        self.sent += 1;
        Action::Send(
            OutboundPacket::new(NodeId::new(dst), self.cfg.sw.packet_words).with_user(UserData {
                msg_id: u64::from(self.sent),
                pkt_index: 0,
                msg_packets: 1,
                user_words: 1,
            }),
        )
    }

    fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Driver, NicChoice};
    use nifdy::NifdyConfig;
    use nifdy_net::topology::Mesh;
    use nifdy_net::{Fabric, FabricConfig};

    #[test]
    fn node_zero_starts_with_all_buckets_ready() {
        let cfg = ScanConfig::radix8(SoftwareModel::cm5_library(false));
        let z = Scan::new(cfg, NodeId::new(0), 4);
        assert_eq!(z.ready.len(), 256);
        let one = Scan::new(cfg, NodeId::new(1), 4);
        assert!(one.ready.is_empty());
    }

    #[test]
    fn delay_config_inserts_computes_between_sends() {
        let cfg = ScanConfig {
            buckets: 4,
            delay_between_sends: 50,
            sw: SoftwareModel::cm5_library(false),
        };
        let mut w = Scan::new(cfg, NodeId::new(0), 2);
        assert!(matches!(w.next_action(Cycle::ZERO), Action::Compute(50)));
        assert!(matches!(w.next_action(Cycle::ZERO), Action::Send(_)));
        assert!(matches!(w.next_action(Cycle::ZERO), Action::Compute(50)));
    }

    #[test]
    fn scan_pipeline_completes_end_to_end() {
        let sw = SoftwareModel::cm5_library(false);
        let cfg = ScanConfig {
            buckets: 16,
            delay_between_sends: 0,
            sw,
        };
        let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NifdyConfig::mesh()),
            sw,
            cfg.build(4),
        )
        .expect("driver builds");
        assert!(d.run_until_quiet(1_000_000), "scan never finished");
        // Each of the 3 forwarding nodes sent 16 buckets.
        let sent: u64 = d.processors().iter().map(|p| p.stats().sent.get()).sum();
        assert_eq!(sent, 3 * 16);
    }

    #[test]
    fn coalesce_spreads_keys_across_nodes() {
        let sw = SoftwareModel::cm5_library(false);
        let cfg = CoalesceConfig {
            keys_per_node: 30,
            seed: 3,
            sw,
        };
        let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NifdyConfig::mesh()),
            sw,
            cfg.build(4),
        )
        .expect("driver builds");
        assert!(d.run_until_quiet(2_000_000));
        assert_eq!(d.packets_received(), 4 * 30);
        for p in d.processors() {
            assert!(p.stats().received.get() > 0, "some keys land everywhere");
        }
    }
}
