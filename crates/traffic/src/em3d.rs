//! EM3D (§4.4): the irregular electromagnetics kernel of Culler et al.
//! [CDG+93], a standard Split-C benchmark.
//!
//! EM3D propagates electromagnetic waves on a bipartite graph of E and H
//! nodes. Per iteration, every graph node recomputes its value from its
//! dependencies; dependencies that live on another processor require a
//! message. The paper drives its simulator with two parameter sets:
//!
//! * Figure 7 (less communication): `n_nodes = 200, d_nodes = 10,
//!   local_p = 80, dist_span = 5` — most arcs are processor-local.
//! * Figure 8 (more communication): `n_nodes = 100, d_nodes = 20,
//!   local_p = 3, dist_span = 20` — most arcs cross processors.
//!
//! We reproduce the communication structure: a seeded random bipartite
//! graph determines, for each processor and iteration, how many value
//! updates go to each neighbor processor. With NIFDY's in-order delivery
//! the library batches the per-destination updates into dense multi-packet
//! transfers; without it, every update carries its own bookkeeping.

use std::collections::BTreeMap;

use nifdy::{Delivered, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::{Cycle, NodeId, SimRng};

use crate::processor::{Action, NodeWorkload};
use crate::SoftwareModel;

/// EM3D graph/communication parameters (the paper's figure captions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Em3dParams {
    /// Graph nodes per processor.
    pub n_nodes: u32,
    /// Dependencies per graph node.
    pub d_nodes: u32,
    /// Percentage of arcs that stay processor-local.
    pub local_p: u8,
    /// Remote arcs reach up to this many processors away (either side).
    pub dist_span: u32,
    /// Iterations to run.
    pub iters: u32,
    /// Graph seed.
    pub seed: u64,
    /// Cycles of local compute charged per iteration (value updates).
    pub compute_per_iter: u64,
}

impl Em3dParams {
    /// The Figure 7 configuration (mostly local arcs).
    pub fn less_communication(seed: u64) -> Self {
        Em3dParams {
            n_nodes: 200,
            d_nodes: 10,
            local_p: 80,
            dist_span: 5,
            iters: 4,
            seed,
            compute_per_iter: 2_000,
        }
    }

    /// The Figure 8 configuration (mostly remote arcs).
    pub fn more_communication(seed: u64) -> Self {
        Em3dParams {
            n_nodes: 100,
            d_nodes: 20,
            local_p: 3,
            dist_span: 20,
            iters: 4,
            seed,
            compute_per_iter: 1_000,
        }
    }

    /// Builds the per-node workloads: the graph is generated once (seeded)
    /// and its cross-processor arc counts shared by all nodes.
    pub fn build(&self, num_nodes: usize, sw: SoftwareModel) -> Vec<Box<dyn NodeWorkload>> {
        let plan = Em3dPlan::generate(*self, num_nodes);
        (0..num_nodes)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(Em3d::new(
                    *self,
                    sw,
                    NodeId::new(i),
                    plan.sends[i].clone(),
                    plan.expected[i],
                ))
            })
            .collect()
    }
}

/// The communication plan derived from the random bipartite graph: per
/// processor, how many value words go to each neighbor per iteration, and
/// how many updates it expects to receive.
#[derive(Debug, Clone)]
pub struct Em3dPlan {
    /// `sends[p]` = sorted (destination, words) pairs.
    pub sends: Vec<Vec<(usize, u32)>>,
    /// Words each processor receives per iteration.
    pub expected: Vec<u32>,
}

impl Em3dPlan {
    /// Generates the seeded graph for `num_nodes` processors.
    pub fn generate(params: Em3dParams, num_nodes: usize) -> Self {
        let mut rng = SimRng::from_seed_stream(params.seed, 0xE3D);
        let mut words: Vec<BTreeMap<usize, u32>> = vec![BTreeMap::new(); num_nodes];
        for (p, w) in words.iter_mut().enumerate() {
            for _ in 0..params.n_nodes * params.d_nodes {
                if rng.gen_range_u64(0..100) < u64::from(params.local_p) {
                    continue; // local arc, no traffic
                }
                // Remote dependency: owner within ±dist_span, never self.
                let span = params.dist_span.max(1) as i64;
                let mut off = rng.gen_range_u64(0..(2 * span as u64)) as i64 - span;
                if off >= 0 {
                    off += 1;
                }
                let dst = (p as i64 + off).rem_euclid(num_nodes as i64) as usize;
                if dst != p {
                    *w.entry(dst).or_insert(0) += 1;
                }
            }
        }
        let mut expected = vec![0u32; num_nodes];
        for (p, m) in words.iter().enumerate() {
            let _ = p;
            for (&dst, &w) in m {
                expected[dst] += w;
            }
        }
        Em3dPlan {
            sends: words.into_iter().map(|m| m.into_iter().collect()).collect(),
            expected,
        }
    }
}

/// Per-node EM3D driver: each iteration sends every cross-arc update,
/// computes, then barriers.
#[derive(Debug)]
pub struct Em3d {
    params: Em3dParams,
    sw: SoftwareModel,
    #[allow(dead_code)]
    node: NodeId,
    /// (dst, per-packet payload words) per neighbor.
    plan: Vec<(usize, Vec<u16>)>,
    iter: u32,
    cursor: usize,
    pkt_in_msg: u32,
    computed: bool,
    need_barrier: bool,
    msg_id: u64,
    words_received: u64,
}

impl Em3d {
    fn new(
        params: Em3dParams,
        sw: SoftwareModel,
        node: NodeId,
        sends: Vec<(usize, u32)>,
        _expected: u32,
    ) -> Self {
        let plan = sends
            .into_iter()
            .map(|(dst, words)| (dst, sw.packet_payloads(words)))
            .collect();
        Em3d {
            params,
            sw,
            node,
            plan,
            iter: 0,
            cursor: 0,
            pkt_in_msg: 0,
            computed: false,
            need_barrier: false,
            msg_id: 0,
            words_received: 0,
        }
    }

    /// Total payload words received so far (for verification).
    pub fn words_received(&self) -> u64 {
        self.words_received
    }
}

impl NodeWorkload for Em3d {
    fn next_action(&mut self, _now: Cycle) -> Action {
        if self.need_barrier {
            self.need_barrier = false;
            return Action::Barrier;
        }
        if self.iter >= self.params.iters {
            return Action::Done;
        }
        if !self.computed {
            // Local value updates before communicating.
            self.computed = true;
            return Action::Compute(self.params.compute_per_iter);
        }
        if self.cursor >= self.plan.len() {
            // Iteration's sends complete: barrier, then next iteration.
            self.iter += 1;
            self.cursor = 0;
            self.pkt_in_msg = 0;
            self.computed = false;
            self.need_barrier = false;
            return Action::Barrier;
        }
        let (dst, payloads) = &self.plan[self.cursor];
        let dst = *dst;
        let pkts = payloads.len() as u32;
        let idx = self.pkt_in_msg;
        let words = payloads[idx as usize];
        self.pkt_in_msg += 1;
        if self.pkt_in_msg == pkts {
            self.cursor += 1;
            self.pkt_in_msg = 0;
            self.msg_id += 1;
        }
        Action::Send(
            OutboundPacket::new(NodeId::new(dst), self.sw.packet_words)
                .with_bulk(pkts > 2)
                .with_user(UserData {
                    msg_id: self.msg_id,
                    pkt_index: idx,
                    msg_packets: pkts,
                    user_words: words,
                }),
        )
    }

    fn on_receive(&mut self, pkt: &Delivered, _now: Cycle) {
        self.words_received += u64::from(pkt.user.user_words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_balanced() {
        let p = Em3dParams::more_communication(5);
        let a = Em3dPlan::generate(p, 16);
        let b = Em3dPlan::generate(p, 16);
        assert_eq!(a.sends, b.sends);
        let sent: u64 = a
            .sends
            .iter()
            .flat_map(|v| v.iter().map(|(_, w)| u64::from(*w)))
            .sum();
        let expected: u64 = a.expected.iter().map(|&w| u64::from(w)).sum();
        assert_eq!(sent, expected);
        assert!(sent > 0);
    }

    #[test]
    fn local_p_controls_communication_volume() {
        let heavy = Em3dPlan::generate(Em3dParams::more_communication(1), 16);
        let light = Em3dPlan::generate(Em3dParams::less_communication(1), 16);
        let vol = |p: &Em3dPlan| -> u64 {
            p.sends
                .iter()
                .flat_map(|v| v.iter().map(|(_, w)| u64::from(*w)))
                .sum()
        };
        assert!(
            vol(&heavy) > 2 * vol(&light),
            "heavy {} vs light {}",
            vol(&heavy),
            vol(&light)
        );
    }

    #[test]
    fn dist_span_bounds_partner_distance() {
        let p = Em3dParams::less_communication(3);
        let plan = Em3dPlan::generate(p, 64);
        for (src, sends) in plan.sends.iter().enumerate() {
            for &(dst, _) in sends {
                let d = (src as i64 - dst as i64)
                    .rem_euclid(64)
                    .min((dst as i64 - src as i64).rem_euclid(64));
                assert!(d <= i64::from(p.dist_span), "{src}->{dst} too far");
            }
        }
    }

    #[test]
    fn workload_emits_compute_sends_and_barriers_per_iteration() {
        let p = Em3dParams {
            iters: 2,
            ..Em3dParams::more_communication(7)
        };
        let sw = SoftwareModel::cm5_library(false);
        let plan = Em3dPlan::generate(p, 4);
        let mut w = Em3d::new(
            p,
            sw,
            NodeId::new(0),
            plan.sends[0].clone(),
            plan.expected[0],
        );
        let mut computes = 0;
        let mut barriers = 0;
        let mut sends = 0;
        loop {
            match w.next_action(Cycle::ZERO) {
                Action::Compute(_) => computes += 1,
                Action::Barrier => barriers += 1,
                Action::Send(_) => sends += 1,
                Action::Done => break,
                Action::Idle => {}
            }
        }
        assert_eq!(computes, 2);
        assert_eq!(barriers, 2);
        assert!(sends > 0);
    }
}
