//! One-stop experiment-cell assembly: network kind → fabric, NIC choice,
//! software model, workload factory, seed — yielding a ready [`Driver`].
//!
//! Every figure/sweep runner used to copy-paste the same four lines
//! (topology, fabric config, workload build, `Driver::new`); [`Scenario`]
//! is that assembly with the knobs named.

use nifdy_trace::TraceHandle;

use crate::driver::{BuildError, Driver, Engine, NicChoice};
use crate::network::NetworkKind;
use crate::processor::NodeWorkload;
use crate::SoftwareModel;

/// Builder for one simulation cell.
///
/// Defaults: 64 nodes, seed 1, the plain interface, and the synthetic
/// software model — override what the experiment varies.
///
/// # Examples
///
/// ```
/// use nifdy_traffic::{NetworkKind, NicChoice, Scenario, SyntheticConfig};
///
/// let kind = NetworkKind::Mesh2D;
/// let mut driver = Scenario::new(kind)
///     .nodes(16)
///     .seed(42)
///     .nic(NicChoice::Nifdy(kind.nifdy_preset()))
///     .build_with(|sc| SyntheticConfig::heavy(sc.seed()).build(sc.nodes()))
///     .unwrap();
/// driver.run_cycles(20_000);
/// assert!(driver.packets_received() > 0);
/// ```
#[derive(Debug, Clone)]
#[must_use = "a Scenario does nothing until built into a Driver"]
pub struct Scenario {
    kind: NetworkKind,
    nodes: usize,
    seed: u64,
    choice: NicChoice,
    sw: SoftwareModel,
    barrier_cost: Option<u64>,
    stall_limit: Option<u64>,
    trace: Option<TraceHandle>,
    metrics_period: Option<u64>,
    engine: Engine,
}

impl Scenario {
    /// Starts a scenario on `kind` with the defaults above.
    pub fn new(kind: NetworkKind) -> Self {
        Scenario {
            kind,
            nodes: 64,
            seed: 1,
            choice: NicChoice::Plain,
            sw: SoftwareModel::synthetic(),
            barrier_cost: None,
            stall_limit: None,
            trace: None,
            metrics_period: None,
            engine: Engine::default(),
        }
    }

    /// Selects the stepping engine (default [`Engine::Cycle`]; see
    /// [`Driver::with_engine`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Machine size in nodes (default 64).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Seed for the fabric and (by convention) the workload (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The interface model attached to every node (default
    /// [`NicChoice::Plain`]).
    pub fn nic(mut self, choice: NicChoice) -> Self {
        self.choice = choice;
        self
    }

    /// The software overhead model (default
    /// [`SoftwareModel::synthetic`]).
    pub fn software(mut self, sw: SoftwareModel) -> Self {
        self.sw = sw;
        self
    }

    /// Overrides the per-release barrier cost
    /// (see [`Driver::with_barrier_cost`]).
    pub fn barrier_cost(mut self, cost: u64) -> Self {
        self.barrier_cost = Some(cost);
        self
    }

    /// Arms the stall watchdog (see [`Driver::with_stall_watchdog`]).
    pub fn stall_watchdog(mut self, limit: u64) -> Self {
        self.stall_limit = Some(limit);
        self
    }

    /// Attaches a flight recorder (see [`Driver::with_trace`]).
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Streams occupancy gauges into a driver-owned registry every `period`
    /// cycles (see [`Driver::with_metrics`]).
    pub fn metrics(mut self, period: u64) -> Self {
        self.metrics_period = Some(period);
        self
    }

    /// Builds the driver from an explicit workload list (one per node, in
    /// node order).
    ///
    /// # Errors
    ///
    /// Everything [`Driver::new`] and [`Driver::with_metrics`] report.
    pub fn build(self, wls: Vec<Box<dyn NodeWorkload>>) -> Result<Driver, BuildError> {
        let fab = self.kind.fabric(self.nodes, self.seed);
        let mut driver = Driver::new(fab, &self.choice, self.sw, wls)?;
        if let Some(cost) = self.barrier_cost {
            driver = driver.with_barrier_cost(cost);
        }
        if let Some(limit) = self.stall_limit {
            driver = driver.with_stall_watchdog(limit);
        }
        if let Some(trace) = self.trace {
            driver = driver.with_trace(trace);
        }
        if let Some(period) = self.metrics_period {
            driver = driver.with_metrics(period)?;
        }
        driver = driver.with_engine(self.engine);
        Ok(driver)
    }

    /// Builds the driver from a workload factory, handing it the scenario
    /// view so the factory can read the size, seed, and software model.
    ///
    /// # Errors
    ///
    /// Everything [`build`](Self::build) reports.
    pub fn build_with<F>(self, factory: F) -> Result<Driver, BuildError>
    where
        F: FnOnce(&ScenarioView) -> Vec<Box<dyn NodeWorkload>>,
    {
        let view = ScenarioView {
            kind: self.kind,
            nodes: self.nodes,
            seed: self.seed,
            sw: self.sw,
        };
        let wls = factory(&view);
        self.build(wls)
    }
}

/// The scenario parameters a workload factory may depend on.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioView {
    kind: NetworkKind,
    nodes: usize,
    seed: u64,
    sw: SoftwareModel,
}

impl ScenarioView {
    /// The network under test.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Machine size in nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The cell's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The software overhead model.
    pub fn sw(&self) -> SoftwareModel {
        self.sw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    #[test]
    fn scenario_builds_a_working_driver() {
        let kind = NetworkKind::Mesh2D;
        let mut d = Scenario::new(kind)
            .nodes(16)
            .seed(7)
            .nic(NicChoice::Nifdy(kind.nifdy_preset()))
            .build_with(|sc| SyntheticConfig::heavy(sc.seed()).build(sc.nodes()))
            .expect("valid scenario");
        d.run_cycles(20_000);
        assert!(d.packets_received() > 0);
    }

    #[test]
    fn scenario_threads_every_option_through() {
        let kind = NetworkKind::Mesh2D;
        let mut d = Scenario::new(kind)
            .nodes(16)
            .barrier_cost(10)
            .stall_watchdog(1_000_000)
            .metrics(100)
            .build_with(|sc| SyntheticConfig::light(sc.seed()).build(sc.nodes()))
            .expect("valid scenario");
        d.run_cycles(5_000);
        assert!(d.metrics().is_some(), "metrics registry must be attached");
    }

    #[test]
    fn workload_count_mismatch_surfaces_as_a_typed_error() {
        let err = Scenario::new(NetworkKind::Mesh2D)
            .build(Vec::new())
            .map(drop)
            .expect_err("no workloads for 64 nodes");
        assert_eq!(
            err,
            BuildError::WorkloadCountMismatch {
                nodes: 64,
                workloads: 0
            }
        );
    }
}
