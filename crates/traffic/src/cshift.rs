//! The cyclic-shift (C-shift) all-to-all pattern of §4.3, from Brewer &
//! Kuszmaul [BK94].
//!
//! The pattern has `P − 1` phases: in phase `p`, processor `i` sends a block
//! to processor `(i + p) mod P`. "As long as the phases remain separate,
//! each receiver is matched with exactly one sender. However ... some nodes
//! may finish the current phase early and move on to the next phase,
//! resulting in one node receiving from two senders", which snowballs into
//! the congestion of Figure 5. Strata's fix is a barrier between phases;
//! NIFDY's admission control achieves the same stability without barriers.

use nifdy::{Delivered, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::{Cycle, NodeId};

use crate::processor::{Action, NodeWorkload};
use crate::SoftwareModel;

/// Configuration for the C-shift workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CShiftConfig {
    /// Payload words each processor transfers to each partner.
    pub words_per_partner: u32,
    /// Insert a barrier between phases (the Strata software fix).
    pub barriers: bool,
    /// Request bulk dialogs for the block transfers.
    pub bulk: bool,
    /// The messaging-layer model (sets packets per block and overheads).
    pub sw: SoftwareModel,
}

impl CShiftConfig {
    /// A block transfer of `words_per_partner` words per phase, no barriers.
    pub fn new(words_per_partner: u32, sw: SoftwareModel) -> Self {
        CShiftConfig {
            words_per_partner,
            barriers: false,
            bulk: true,
            sw,
        }
    }

    /// Enables inter-phase barriers.
    pub fn with_barriers(mut self, on: bool) -> Self {
        self.barriers = on;
        self
    }

    /// Builds the per-node workloads for `num_nodes` processors.
    pub fn build(&self, num_nodes: usize) -> Vec<Box<dyn NodeWorkload>> {
        (0..num_nodes)
            .map(|i| -> Box<dyn NodeWorkload> {
                Box::new(CShift::new(*self, NodeId::new(i), num_nodes))
            })
            .collect()
    }

    /// Total packets one node sends over the whole pattern.
    pub fn packets_per_node(&self, num_nodes: usize) -> u64 {
        u64::from(self.sw.packets_for_message(self.words_per_partner)) * (num_nodes as u64 - 1)
    }
}

/// Per-node C-shift state.
#[derive(Debug)]
pub struct CShift {
    cfg: CShiftConfig,
    node: NodeId,
    p: usize,
    phase: usize,
    payloads: Vec<u16>,
    sent_this_phase: u32,
    need_barrier: bool,
    msg_id: u64,
}

impl CShift {
    /// Creates the workload for one node.
    pub fn new(cfg: CShiftConfig, node: NodeId, num_nodes: usize) -> Self {
        let payloads = cfg.sw.packet_payloads(cfg.words_per_partner);
        CShift {
            cfg,
            node,
            p: num_nodes,
            phase: 1,
            payloads,
            sent_this_phase: 0,
            need_barrier: false,
            msg_id: 0,
        }
    }

    fn partner(&self) -> NodeId {
        NodeId::new((self.node.index() + self.phase) % self.p)
    }
}

impl NodeWorkload for CShift {
    fn next_action(&mut self, _now: Cycle) -> Action {
        if self.need_barrier {
            self.need_barrier = false;
            return Action::Barrier;
        }
        if self.phase >= self.p {
            return Action::Done;
        }
        let dst = self.partner();
        let idx = self.sent_this_phase;
        let pkts = self.payloads.len() as u32;
        self.sent_this_phase += 1;
        let pkt = OutboundPacket::new(dst, self.cfg.sw.packet_words)
            .with_bulk(self.cfg.bulk && pkts > 1)
            .with_user(UserData {
                msg_id: self.msg_id,
                pkt_index: idx,
                msg_packets: pkts,
                user_words: self.payloads[idx as usize],
            });
        if self.sent_this_phase == pkts {
            self.phase += 1;
            self.sent_this_phase = 0;
            self.msg_id += 1;
            if self.cfg.barriers && self.phase < self.p {
                self.need_barrier = true;
            }
        }
        Action::Send(pkt)
    }

    fn on_receive(&mut self, _pkt: &Delivered, _now: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_targets_the_shifted_partner() {
        let cfg = CShiftConfig::new(15, SoftwareModel::cm5_library(false));
        let mut w = CShift::new(cfg, NodeId::new(2), 8);
        let pkts = cfg.sw.packets_for_message(15);
        for phase in 1..8usize {
            for _ in 0..pkts {
                match w.next_action(Cycle::ZERO) {
                    Action::Send(p) => assert_eq!(p.dst, NodeId::new((2 + phase) % 8)),
                    other => panic!("expected send, got {other:?}"),
                }
            }
        }
        assert_eq!(w.next_action(Cycle::ZERO), Action::Done);
    }

    #[test]
    fn barriers_appear_between_phases_when_enabled() {
        let cfg = CShiftConfig::new(6, SoftwareModel::cm5_library(false)).with_barriers(true);
        let pkts = cfg.sw.packets_for_message(6);
        let mut w = CShift::new(cfg, NodeId::new(0), 4);
        let mut seq = Vec::new();
        loop {
            let a = w.next_action(Cycle::ZERO);
            if a == Action::Done {
                break;
            }
            seq.push(a);
        }
        let barriers = seq.iter().filter(|a| matches!(a, Action::Barrier)).count();
        let sends = seq.iter().filter(|a| matches!(a, Action::Send(_))).count();
        assert_eq!(sends as u32, pkts * 3);
        assert_eq!(barriers, 2, "P-1 phases need P-2 interior barriers");
    }

    #[test]
    fn in_order_library_sends_fewer_packets() {
        let with = CShiftConfig::new(60, SoftwareModel::cm5_library(false));
        let without = CShiftConfig::new(60, SoftwareModel::cm5_library(true));
        assert!(with.packets_per_node(32) < without.packets_per_node(32));
    }
}
