//! The network attachment point a NIFDY unit drives.
//!
//! The protocol state machine in the `nifdy` crate needs only five
//! operations from whatever carries its packets: the current time, an
//! injection-readiness probe, injection, ejection, and a peek. [`NetPort`]
//! names exactly that surface so the same `NifdyUnit::step` runs unchanged
//! against the cycle-accurate [`Fabric`](crate::Fabric) *and* against a real
//! byte transport (the `nifdy-wire` crate implements `NetPort` on top of
//! loopback and UDP backends). The fabric is thus one port implementation
//! among several, and the sim-vs-wire differential conformance suite can
//! drive both from identical workloads.

use nifdy_sim::{Cycle, NodeId};

use crate::packet::{Lane, Packet};

/// One node's bidirectional attachment to a packet carrier.
///
/// Implementations may deliver out of order, even between the same pair of
/// nodes: NIFDY's in-order guarantee comes from the protocol's own
/// sequencing (one outstanding scalar packet per destination; the bulk
/// reorder window), so a carrier that reorders — adaptive routing, delivery
/// jitter, real datagrams — is legal and deliberately exercised by the
/// conformance suite. `eject`/`peek_eject` must agree: `peek_eject` returns
/// the packet the next `eject` on that lane would remove.
pub trait NetPort {
    /// The carrier's current cycle (drives protocol timeouts and stamps).
    fn now(&self) -> Cycle;

    /// Whether `node` can hand the carrier a new packet on `lane` this
    /// cycle.
    fn can_inject(&self, node: NodeId, lane: Lane) -> bool;

    /// Starts sending `packet` from `node`. Callers check
    /// [`NetPort::can_inject`] first; implementations may panic on a busy
    /// port, mirroring [`Fabric::inject`](crate::Fabric::inject).
    fn inject(&mut self, node: NodeId, packet: Packet);

    /// Removes and returns the oldest fully delivered packet at `node` on
    /// `lane`, if any.
    fn eject(&mut self, node: NodeId, lane: Lane) -> Option<Packet>;

    /// Peeks at the oldest delivered packet without removing it.
    fn peek_eject(&self, node: NodeId, lane: Lane) -> Option<&Packet>;
}

impl NetPort for crate::Fabric {
    #[inline]
    fn now(&self) -> Cycle {
        crate::Fabric::now(self)
    }

    #[inline]
    fn can_inject(&self, node: NodeId, lane: Lane) -> bool {
        crate::Fabric::can_inject(self, node, lane)
    }

    #[inline]
    fn inject(&mut self, node: NodeId, packet: Packet) {
        crate::Fabric::inject(self, node, packet);
    }

    #[inline]
    fn eject(&mut self, node: NodeId, lane: Lane) -> Option<Packet> {
        crate::Fabric::eject(self, node, lane)
    }

    #[inline]
    fn peek_eject(&self, node: NodeId, lane: Lane) -> Option<&Packet> {
        crate::Fabric::peek_eject(self, node, lane)
    }
}

#[cfg(test)]
mod tests {
    use nifdy_sim::PacketId;

    use super::*;
    use crate::topology::FatTree;
    use crate::{FabricConfig, Packet};

    #[test]
    fn fabric_is_a_net_port() {
        let mut fab = crate::Fabric::new(Box::new(FatTree::new(16)), FabricConfig::default());
        let (a, b) = (NodeId::new(0), NodeId::new(15));
        {
            let port: &mut dyn NetPort = &mut fab;
            assert!(port.can_inject(a, Lane::Request));
            port.inject(a, Packet::data(PacketId::new(0), a, b, 4));
        }
        for _ in 0..10_000 {
            fab.step();
            let port: &mut dyn NetPort = &mut fab;
            if port.peek_eject(b, Lane::Request).is_some() {
                let got = port.eject(b, Lane::Request).expect("peek agreed");
                assert_eq!(got.src, a);
                return;
            }
        }
        panic!("packet never delivered through the port view");
    }
}
