//! Fat trees: the full 4-ary fat tree (k-ary n-tree) and the CM-5-like
//! variant whose lower routers have only two parents.
//!
//! In a k-ary n-tree, routers live on levels `0..n` (level 0 at the leaves),
//! with `k^(n-1)` routers per level. Router `(l, w)` — `w` written in base-k
//! digits `w_{n-2}..w_0` — connects up-port `j` to router
//! `(l+1, replace_digit(w, l, j))`. Going up, *any* parent makes progress
//! (the adaptive multipath the paper exploits); going down, the path is
//! unique. Port numbering: down ports `0..k`, up ports `k..2k`.

use nifdy_sim::NodeId;

use super::{Candidate, Endpoint, FabricSpec, NodeAttach, RouteState, RouterSpec, Topology};

const K: usize = 4;

/// A full 4-ary fat tree.
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{FatTree, Topology};
/// use nifdy_sim::NodeId;
///
/// let ft = FatTree::new(64);
/// assert_eq!(ft.num_nodes(), 64);
/// // "With three levels of routers, the maximum internode distance is 6 hops."
/// assert_eq!(ft.hops(NodeId::new(0), NodeId::new(63)), 6);
/// assert!(ft.reorders());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTree {
    nodes: usize,
    levels: usize,
    /// Up links removed by fault injection: `(level, router index, up port
    /// j)`. Dead links are filtered from routing candidates; the multipath
    /// structure routes around them (§1: "faults in the network may
    /// restrict the available bandwidth").
    dead_up: std::collections::BTreeSet<(u8, u32, u8)>,
}

impl FatTree {
    /// Creates a full 4-ary fat tree over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of 4 and at least 16.
    pub fn new(nodes: usize) -> Self {
        let mut levels = 0;
        let mut n = 1;
        while n < nodes {
            n *= K;
            levels += 1;
        }
        assert!(
            n == nodes && levels >= 2,
            "fat tree size must be a power of 4, at least 16 (got {nodes})"
        );
        FatTree {
            nodes,
            levels,
            dead_up: std::collections::BTreeSet::new(),
        }
    }

    /// Marks up links as failed: each entry is `(level, router index within
    /// the level, up port 0..4)`. Faulty links still exist in the spec but
    /// are never chosen by routing — modelling a link taken out of service.
    ///
    /// # Panics
    ///
    /// Panics if any entry is out of range, or if every up link of some
    /// router is dead (which would partition the network).
    pub fn with_dead_up_links(mut self, dead: impl IntoIterator<Item = (u8, u32, u8)>) -> Self {
        let per = self.routers_per_level() as u32;
        for (level, w, j) in dead {
            assert!(
                (level as usize) < self.levels - 1,
                "level {level} has no up links"
            );
            assert!(w < per, "router index {w} out of range");
            assert!((j as usize) < K, "up port {j} out of range");
            self.dead_up.insert((level, w, j));
        }
        for level in 0..self.levels - 1 {
            for w in 0..per {
                let dead = (0..K as u8)
                    .filter(|&j| self.dead_up.contains(&(level as u8, w, j)))
                    .count();
                assert!(
                    dead < K,
                    "all up links of router ({level}, {w}) are dead: network partitioned"
                );
            }
        }
        self
    }

    fn routers_per_level(&self) -> usize {
        self.nodes / K
    }

    fn router_id(&self, level: usize, w: usize) -> u32 {
        (level * self.routers_per_level() + w) as u32
    }

    fn level_of(&self, router: u32) -> (usize, usize) {
        let per = self.routers_per_level();
        ((router as usize) / per, (router as usize) % per)
    }

    /// Is router `(level, w)` an ancestor of node `a`? True iff `w`'s digits
    /// at positions `level..n-1` match the node's leaf-router digits.
    fn is_ancestor(&self, level: usize, w: usize, a: usize) -> bool {
        let leaf = a / K;
        let shift = pow_k(level);
        w / shift == leaf / shift
    }
}

#[inline]
fn pow_k(e: usize) -> usize {
    K.pow(e as u32)
}

#[inline]
fn digit(w: usize, pos: usize) -> usize {
    (w / pow_k(pos)) % K
}

#[inline]
fn replace_digit(w: usize, pos: usize, v: usize) -> usize {
    w - digit(w, pos) * pow_k(pos) + v * pow_k(pos)
}

impl Topology for FatTree {
    fn name(&self) -> String {
        format!("4-ary fat tree ({} nodes)", self.nodes)
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn spec(&self) -> FabricSpec {
        let per = self.routers_per_level();
        let top = self.levels - 1;
        let mut routers = Vec::with_capacity(self.levels * per);
        for level in 0..self.levels {
            for w in 0..per {
                let mut links = Vec::new();
                // Down ports 0..K.
                for c in 0..K {
                    if level == 0 {
                        links.push(Endpoint::Node((w * K + c) as u32));
                    } else {
                        // Child c: same index with digit (level-1) set to c.
                        let child = replace_digit(w, level - 1, c);
                        links.push(Endpoint::Router {
                            router: self.router_id(level - 1, child),
                            // Arrives at the child's up in-port for parent j,
                            // where j is the digit the child sees us under.
                            in_port: (K + digit(w, level - 1)) as u8,
                        });
                    }
                }
                // Up ports K..2K (absent at the top level).
                if level < top {
                    for j in 0..K {
                        let parent = replace_digit(w, level, j);
                        links.push(Endpoint::Router {
                            router: self.router_id(level + 1, parent),
                            // We are the parent's child number digit(w, level).
                            in_port: digit(w, level) as u8,
                        });
                    }
                }
                let in_ports = if level == top { K } else { 2 * K };
                routers.push(RouterSpec {
                    in_ports: in_ports as u8,
                    links,
                });
            }
        }
        // Node injection: dedicated extra in-port at the leaf router.
        let mut attaches = Vec::with_capacity(self.nodes);
        for node in 0..self.nodes {
            let leaf = self.router_id(0, node / K);
            let inj_port = routers[leaf as usize].in_ports;
            routers[leaf as usize].in_ports += 1;
            attaches.push(NodeAttach {
                inj_router: leaf,
                inj_port,
                ej_router: leaf,
                ej_port: (node % K) as u8,
            });
        }
        FabricSpec { routers, attaches }
    }

    fn route(&self, router: u32, dst: NodeId, _state: &RouteState, out: &mut Vec<Candidate>) {
        let (level, w) = self.level_of(router);
        let a = dst.index();
        if self.is_ancestor(level, w, a) {
            // Unique path down: at level 0 eject to the node, else descend
            // toward the child holding digit `level-1` of the leaf index.
            let port = if level == 0 {
                a % K
            } else {
                digit(a / K, level - 1)
            };
            out.push(Candidate::any(port as u8));
        } else {
            // Any live parent makes progress: full adaptivity going up.
            for j in 0..K {
                if !self.dead_up.contains(&(level as u8, w as u32, j as u8)) {
                    out.push(Candidate::any((K + j) as u8));
                }
            }
        }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        // 2L + 2 link hops, counting the node-router links, where L is the
        // lowest common-ancestor level.
        let (la, lb) = (a.index() / K, b.index() / K);
        let mut level = 0;
        while la / pow_k(level) != lb / pow_k(level) {
            level += 1;
        }
        (2 * level + 2) as u32
    }

    fn reorders(&self) -> bool {
        true
    }
}

/// The CM-5-like fat tree: routers in the first two levels have **two**
/// parents instead of four, reducing bisection bandwidth, and links carry 4
/// bits per cycle (configure the fabric with `flit_cycles = 4` and
/// `time_mux_lanes = true` to reproduce the paper's "eight bits every two
/// cycles" per logical network).
///
/// Structure for `N` nodes (`N` ∈ {32, 64}): `N/4` leaf routers (4 nodes
/// each, 2 up ports), `N/8` middle routers (4 down, 2 up) in groups of two
/// per 16-node subtree, and `N/16` top routers.
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{Cm5FatTree, Topology};
/// use nifdy_sim::NodeId;
///
/// let cm5 = Cm5FatTree::new(64);
/// assert_eq!(cm5.hops(NodeId::new(0), NodeId::new(63)), 6);
/// assert_eq!(cm5.hops(NodeId::new(0), NodeId::new(5)), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cm5FatTree {
    nodes: usize,
}

impl Cm5FatTree {
    /// Creates a CM-5-style fat tree over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is 32 or 64 (the machine sizes the paper
    /// simulates with this network).
    pub fn new(nodes: usize) -> Self {
        assert!(
            nodes == 32 || nodes == 64,
            "CM-5 fat tree supports 32 or 64 nodes (got {nodes})"
        );
        Cm5FatTree { nodes }
    }

    fn leaves(&self) -> usize {
        self.nodes / 4
    }

    fn groups(&self) -> usize {
        self.nodes / 16
    }

    fn mids(&self) -> usize {
        self.nodes / 8
    }

    // Router index layout: [leaves][mids][tops].
    fn leaf_id(&self, l: usize) -> u32 {
        l as u32
    }

    fn mid_id(&self, g: usize, i: usize) -> u32 {
        (self.leaves() + 2 * g + i) as u32
    }

    fn top_id(&self, t: usize) -> u32 {
        (self.leaves() + self.mids() + t) as u32
    }

    fn classify(&self, router: u32) -> Cm5Router {
        let r = router as usize;
        if r < self.leaves() {
            Cm5Router::Leaf(r)
        } else if r < self.leaves() + self.mids() {
            let m = r - self.leaves();
            Cm5Router::Mid(m / 2, m % 2)
        } else {
            Cm5Router::Top(r - self.leaves() - self.mids())
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cm5Router {
    /// Leaf router index (serves nodes `4l..4l+4`).
    Leaf(usize),
    /// Middle router (group, copy within group).
    Mid(usize, usize),
    /// Top router index.
    Top(usize),
}

impl Topology for Cm5FatTree {
    fn name(&self) -> String {
        format!("CM-5 fat tree ({} nodes)", self.nodes)
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn spec(&self) -> FabricSpec {
        let mut routers = Vec::new();
        // Leaves: down ports 0..4 to nodes, up ports 4,5 to the two group
        // mids. In-ports: 0..4 node injection (via attaches), 4,5 from mids.
        for l in 0..self.leaves() {
            let g = l / 4;
            let c = l % 4; // position within group
            let mut links: Vec<Endpoint> =
                (0..4).map(|p| Endpoint::Node((l * 4 + p) as u32)).collect();
            for i in 0..2 {
                links.push(Endpoint::Router {
                    router: self.mid_id(g, i),
                    in_port: c as u8, // mid's down in-port for this leaf
                });
            }
            routers.push(RouterSpec { in_ports: 6, links });
        }
        // Mids: down ports 0..4 to the group's leaves, up ports 4,5 to tops.
        for g in 0..self.groups() {
            for i in 0..2 {
                let mut links = Vec::new();
                for c in 0..4 {
                    links.push(Endpoint::Router {
                        router: self.leaf_id(g * 4 + c),
                        in_port: (4 + i) as u8, // leaf's up in-port for mid i
                    });
                }
                for j in 0..2 {
                    links.push(Endpoint::Router {
                        router: self.top_id(2 * i + j),
                        in_port: g as u8, // top's down in-port for this group
                    });
                }
                routers.push(RouterSpec { in_ports: 6, links });
            }
        }
        // Tops: down port per group, to mid (g, i(t)).
        for t in 0..4 {
            let i = t / 2;
            let j = t % 2;
            let mut links = Vec::new();
            for g in 0..self.groups() {
                links.push(Endpoint::Router {
                    router: self.mid_id(g, i),
                    in_port: (4 + j) as u8, // mid's up in-port for top j
                });
            }
            routers.push(RouterSpec {
                in_ports: self.groups() as u8,
                links,
            });
        }
        // Node attaches at leaves.
        let mut attaches = Vec::with_capacity(self.nodes);
        for node in 0..self.nodes {
            let leaf = self.leaf_id(node / 4);
            attaches.push(NodeAttach {
                inj_router: leaf,
                inj_port: (node % 4) as u8,
                ej_router: leaf,
                ej_port: (node % 4) as u8,
            });
        }
        FabricSpec { routers, attaches }
    }

    fn route(&self, router: u32, dst: NodeId, _state: &RouteState, out: &mut Vec<Candidate>) {
        let a = dst.index();
        match self.classify(router) {
            Cm5Router::Leaf(l) => {
                if a / 4 == l {
                    out.push(Candidate::any((a % 4) as u8));
                } else {
                    out.push(Candidate::any(4));
                    out.push(Candidate::any(5));
                }
            }
            Cm5Router::Mid(g, _) => {
                if a / 16 == g {
                    out.push(Candidate::any(((a / 4) % 4) as u8));
                } else {
                    out.push(Candidate::any(4));
                    out.push(Candidate::any(5));
                }
            }
            Cm5Router::Top(_) => {
                out.push(Candidate::any((a / 16) as u8));
            }
        }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (x, y) = (a.index(), b.index());
        if x / 4 == y / 4 {
            2
        } else if x / 16 == y / 16 {
            4
        } else {
            6
        }
    }

    fn reorders(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::checks::{check_all_candidates_deliver, check_routing_delivers, check_spec};
    use super::super::hop_profile;
    use super::*;

    #[test]
    fn fat_tree_spec_is_well_formed() {
        check_spec(&FatTree::new(16));
        check_spec(&FatTree::new(64));
        check_spec(&FatTree::new(256));
    }

    #[test]
    fn fat_tree_routing_delivers() {
        check_routing_delivers(&FatTree::new(64), 5);
    }

    #[test]
    fn fat_tree_all_adaptive_choices_deliver() {
        check_all_candidates_deliver(&FatTree::new(16), 3);
        check_all_candidates_deliver(&FatTree::new(64), 5);
    }

    #[test]
    fn fat_tree_paper_distances() {
        // Max internode distance 6 hops for 64 nodes; "the average distance
        // is not much less than that".
        let (avg, max) = hop_profile(&FatTree::new(64));
        assert_eq!(max, 6);
        assert!(avg > 5.0 && avg < 6.0, "avg={avg}");
    }

    #[test]
    fn fat_tree_digit_helpers() {
        assert_eq!(digit(0b1110, 1), 3); // 14 = 32... base 4: 14 = 3*4+2
        assert_eq!(digit(14, 0), 2);
        assert_eq!(digit(14, 1), 3);
        assert_eq!(replace_digit(14, 0, 1), 13);
        assert_eq!(replace_digit(14, 1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn fat_tree_rejects_bad_sizes() {
        let _ = FatTree::new(60);
    }

    #[test]
    fn faulty_fat_tree_still_delivers_everywhere() {
        // Kill three of four up links on one leaf router and one mid-level
        // link: routing must steer around them.
        let ft = FatTree::new(64).with_dead_up_links([(0, 0, 0), (0, 0, 1), (0, 0, 2), (1, 5, 3)]);
        check_routing_delivers(&ft, 5);
        check_all_candidates_deliver(&ft, 5);
    }

    #[test]
    fn faulty_routes_never_use_dead_links() {
        let ft = FatTree::new(64).with_dead_up_links([(0, 0, 0), (0, 0, 1)]);
        let mut out = Vec::new();
        // Leaf router 0 going up (destination outside its subtree).
        ft.route(0, NodeId::new(63), &RouteState::default(), &mut out);
        let ports: Vec<u8> = out.iter().map(|c| c.port).collect();
        assert_eq!(ports, vec![6, 7], "dead up ports 4 and 5 must be filtered");
    }

    #[test]
    #[should_panic(expected = "partitioned")]
    fn killing_every_up_link_is_rejected() {
        let _ = FatTree::new(16).with_dead_up_links([(0, 0, 0), (0, 0, 1), (0, 0, 2), (0, 0, 3)]);
    }

    #[test]
    fn cm5_spec_is_well_formed() {
        check_spec(&Cm5FatTree::new(32));
        check_spec(&Cm5FatTree::new(64));
    }

    #[test]
    fn cm5_routing_delivers() {
        check_routing_delivers(&Cm5FatTree::new(32), 5);
        check_routing_delivers(&Cm5FatTree::new(64), 5);
    }

    #[test]
    fn cm5_all_adaptive_choices_deliver() {
        check_all_candidates_deliver(&Cm5FatTree::new(64), 5);
    }

    #[test]
    fn cm5_has_lower_bisection_than_full_tree() {
        // Count top-level links: the full tree keeps full bandwidth at every
        // level; the CM-5 variant halves it twice.
        let full = FatTree::new(64).spec();
        let cm5 = Cm5FatTree::new(64).spec();
        assert!(cm5.num_internal_links() < full.num_internal_links());
    }

    #[test]
    #[should_panic(expected = "32 or 64")]
    fn cm5_rejects_unsupported_sizes() {
        let _ = Cm5FatTree::new(128);
    }
}
