//! k-ary n-dimensional meshes and tori with dimension-order routing.
//!
//! The paper's simulator supports "two- and three-dimensional meshes and tori
//! utilizing wormhole routing with virtual channels", with all dimension
//! sizes run-time parameters. Port numbering: port 0 is the node
//! (injection/ejection); for dimension `d`, port `1 + 2d` heads in the
//! positive direction and port `2 + 2d` in the negative direction.
//!
//! Tori use the classic two-class dateline scheme for deadlock freedom:
//! packets start each dimension on VC class 0 and switch to class 1 after
//! crossing the wraparound link, so meshes need one VC per lane and tori
//! need two.

use nifdy_sim::NodeId;

use super::{Candidate, Endpoint, FabricSpec, NodeAttach, RouteState, RouterSpec, Topology, VcSel};

/// Most dimensions a [`Grid`] supports; lets coordinate vectors live on
/// the stack during per-hop routing.
const MAX_DIMS: usize = 4;

/// A mesh or torus, generic over dimensionality and wraparound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    dims: Vec<usize>,
    wrap: bool,
}

/// An n-dimensional mesh (no wraparound links).
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{Mesh, Topology};
///
/// let mesh = Mesh::d2(8, 8);
/// assert_eq!(mesh.num_nodes(), 64);
/// assert!(!mesh.reorders());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh(Grid);

/// An n-dimensional torus (wraparound links, dateline VCs).
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{Topology, Torus};
/// use nifdy_sim::NodeId;
///
/// let torus = Torus::d2(8, 8);
/// // Wraparound halves the worst-case distance compared to the mesh.
/// assert_eq!(torus.hops(NodeId::new(0), NodeId::new(63)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus(Grid);

impl Mesh {
    /// Creates a 2-D mesh of `x` by `y` routers (one node each).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is smaller than 2.
    pub fn d2(x: usize, y: usize) -> Self {
        Mesh(Grid::new(vec![x, y], false))
    }

    /// Creates a 3-D mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is smaller than 2.
    pub fn d3(x: usize, y: usize, z: usize) -> Self {
        Mesh(Grid::new(vec![x, y, z], false))
    }
}

impl Torus {
    /// Creates a 2-D torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is smaller than 2.
    pub fn d2(x: usize, y: usize) -> Self {
        Torus(Grid::new(vec![x, y], true))
    }

    /// Creates a 3-D torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is smaller than 2.
    pub fn d3(x: usize, y: usize, z: usize) -> Self {
        Torus(Grid::new(vec![x, y, z], true))
    }
}

impl Grid {
    fn new(dims: Vec<usize>, wrap: bool) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "1-{MAX_DIMS} dimensions supported"
        );
        assert!(
            dims.iter().all(|&d| d >= 2),
            "every dimension must have at least 2 routers"
        );
        Grid { dims, wrap }
    }

    fn num_nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of router `idx`, one per dimension; unused trailing
    /// slots (beyond `dims.len()`, up to [`MAX_DIMS`]) stay zero. Returned
    /// by value so the per-hop route computation never heap-allocates.
    fn coords(&self, idx: usize) -> [usize; MAX_DIMS] {
        let mut c = [0; MAX_DIMS];
        let mut rest = idx;
        for (slot, &d) in c.iter_mut().zip(&self.dims) {
            *slot = rest % d;
            rest /= d;
        }
        c
    }

    fn index(&self, coords: &[usize]) -> usize {
        let mut idx = 0;
        for (&d, &c) in self.dims.iter().zip(coords).rev() {
            idx = idx * d + c;
        }
        idx
    }

    /// Neighbor of `router` in dimension `dim`, direction `plus`; `None` at a
    /// mesh edge.
    fn neighbor(&self, router: usize, dim: usize, plus: bool) -> Option<usize> {
        let mut c = self.coords(router);
        let size = self.dims[dim];
        if plus {
            if c[dim] + 1 < size {
                c[dim] += 1;
            } else if self.wrap {
                c[dim] = 0;
            } else {
                return None;
            }
        } else if c[dim] > 0 {
            c[dim] -= 1;
        } else if self.wrap {
            c[dim] = size - 1;
        } else {
            return None;
        }
        Some(self.index(&c))
    }

    fn is_wrap_hop(&self, router: usize, dim: usize, plus: bool) -> bool {
        if !self.wrap {
            return false;
        }
        let c = self.coords(router);
        if plus {
            c[dim] == self.dims[dim] - 1
        } else {
            c[dim] == 0
        }
    }

    fn spec(&self) -> FabricSpec {
        let n = self.num_nodes();
        let ports = 1 + 2 * self.dims.len() as u8;
        let mut routers = Vec::with_capacity(n);
        for r in 0..n {
            let mut links = Vec::with_capacity(ports as usize);
            links.push(Endpoint::Node(r as u32)); // port 0: eject
            for dim in 0..self.dims.len() {
                for &plus in &[true, false] {
                    let port = port_for(dim, plus);
                    debug_assert_eq!(links.len(), port as usize);
                    match self.neighbor(r, dim, plus) {
                        Some(t) => links.push(Endpoint::Router {
                            router: t as u32,
                            // Arrives on the port pointing back toward us.
                            in_port: port_for(dim, !plus),
                        }),
                        // Mesh edge: keep port numbering dense with a
                        // self-loop placeholder that routing never selects.
                        None => links.push(Endpoint::Router {
                            router: r as u32,
                            in_port: u8::MAX, // patched below
                        }),
                    }
                }
            }
            routers.push(RouterSpec {
                in_ports: ports,
                links,
            });
        }
        // Replace edge placeholders with parallel self-links on unused input
        // ports: give each router extra inputs so the spec stays well-formed.
        let mut extra_inputs = vec![0u8; n];
        for r in 0..n {
            for p in 0..routers[r].links.len() {
                if let Endpoint::Router { router, in_port } = routers[r].links[p] {
                    if in_port == u8::MAX {
                        let ip = routers[router as usize].in_ports + extra_inputs[router as usize];
                        extra_inputs[router as usize] += 1;
                        routers[r].links[p] = Endpoint::Router {
                            router,
                            in_port: ip,
                        };
                    }
                }
            }
        }
        for (r, extra) in extra_inputs.iter().enumerate() {
            routers[r].in_ports += extra;
        }

        // Injection uses a dedicated extra input port per router.
        let mut attaches = Vec::with_capacity(n);
        for (node, router) in routers.iter_mut().enumerate() {
            let inj_port = router.in_ports;
            router.in_ports += 1;
            attaches.push(NodeAttach {
                inj_router: node as u32,
                inj_port,
                ej_router: node as u32,
                ej_port: 0,
            });
        }
        FabricSpec { routers, attaches }
    }

    fn init_route(&self, src: NodeId, dst: NodeId) -> RouteState {
        let mut dir_bits = 0u8;
        if self.wrap {
            let s = self.coords(src.index());
            let t = self.coords(dst.index());
            for dim in 0..self.dims.len() {
                let size = self.dims[dim];
                let fwd = (t[dim] + size - s[dim]) % size;
                // Shortest direction; ties go positive.
                if fwd <= size - fwd {
                    dir_bits |= 1 << dim;
                }
            }
        }
        RouteState {
            dir_bits,
            vc_class: 0,
            aux: u8::MAX, // no dimension entered yet
        }
    }

    fn route(&self, router: u32, dst: NodeId, state: &RouteState, out: &mut Vec<Candidate>) {
        let here = self.coords(router as usize);
        let there = self.coords(dst.index());
        for dim in 0..self.dims.len() {
            if here[dim] != there[dim] {
                let plus = if self.wrap {
                    state.dir_bits & (1 << dim) != 0
                } else {
                    there[dim] > here[dim]
                };
                let vc = if self.wrap {
                    // Fresh dimension starts back on class 0.
                    let class = if state.aux == dim as u8 {
                        state.vc_class
                    } else {
                        0
                    };
                    VcSel::Class(class)
                } else {
                    VcSel::Any
                };
                out.push(Candidate {
                    port: port_for(dim, plus),
                    vc,
                });
                return;
            }
        }
        out.push(Candidate::any(0)); // eject
    }

    fn on_hop(&self, router: u32, port: u8, state: &mut RouteState) {
        if port == 0 || !self.wrap {
            return;
        }
        let (dim, plus) = dim_of_port(port);
        if state.aux != dim as u8 {
            state.aux = dim as u8;
            state.vc_class = 0;
        }
        if self.is_wrap_hop(router as usize, dim, plus) {
            state.vc_class = 1;
        }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords(a.index());
        let cb = self.coords(b.index());
        let mut h = 0usize;
        for dim in 0..self.dims.len() {
            let diff = ca[dim].abs_diff(cb[dim]);
            h += if self.wrap {
                diff.min(self.dims[dim] - diff)
            } else {
                diff
            };
        }
        h as u32
    }

    fn name(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!(
            "{} {}",
            dims.join("x"),
            if self.wrap { "torus" } else { "mesh" }
        )
    }
}

#[inline]
fn port_for(dim: usize, plus: bool) -> u8 {
    1 + 2 * dim as u8 + u8::from(!plus)
}

#[inline]
fn dim_of_port(port: u8) -> (usize, bool) {
    debug_assert!(port >= 1);
    (((port - 1) / 2) as usize, (port - 1).is_multiple_of(2))
}

macro_rules! delegate_topology {
    ($ty:ty) => {
        impl Topology for $ty {
            fn name(&self) -> String {
                self.0.name()
            }
            fn num_nodes(&self) -> usize {
                self.0.num_nodes()
            }
            fn spec(&self) -> FabricSpec {
                self.0.spec()
            }
            fn init_route(&self, src: NodeId, dst: NodeId) -> RouteState {
                self.0.init_route(src, dst)
            }
            fn route(
                &self,
                router: u32,
                dst: NodeId,
                state: &RouteState,
                out: &mut Vec<Candidate>,
            ) {
                self.0.route(router, dst, state, out)
            }
            fn on_hop(&self, router: u32, port: u8, state: &mut RouteState) {
                self.0.on_hop(router, port, state)
            }
            fn hops(&self, a: NodeId, b: NodeId) -> u32 {
                self.0.hops(a, b)
            }
            fn reorders(&self) -> bool {
                // Dimension-order with a single path: in-order per pair.
                // Tori run two dateline VC classes, but a given packet's VC
                // sequence is deterministic, so per-pair order still holds.
                false
            }
            fn min_vcs_per_lane(&self) -> u8 {
                if self.0.wrap {
                    2
                } else {
                    1
                }
            }
        }
    };
}

delegate_topology!(Mesh);
delegate_topology!(Torus);

#[cfg(test)]
mod tests {
    use super::super::checks::{check_routing_delivers, check_spec};
    use super::super::hop_profile;
    use super::*;

    #[test]
    fn mesh_spec_is_well_formed() {
        check_spec(&Mesh::d2(4, 4));
        check_spec(&Mesh::d3(3, 3, 3));
    }

    #[test]
    fn torus_spec_is_well_formed() {
        check_spec(&Torus::d2(4, 4));
        check_spec(&Torus::d3(3, 3, 3));
    }

    #[test]
    fn mesh_routing_delivers_everywhere() {
        check_routing_delivers(&Mesh::d2(4, 4), 6);
        check_routing_delivers(&Mesh::d3(3, 3, 3), 6);
    }

    #[test]
    fn torus_routing_delivers_everywhere() {
        check_routing_delivers(&Torus::d2(5, 5), 4);
        check_routing_delivers(&Torus::d3(3, 3, 3), 4);
    }

    #[test]
    fn paper_mesh_distances() {
        // "With uniform traffic, the maximum and average internode distances
        // are 14 and 6 hops respectively" (8x8 mesh; the exact average over
        // distinct pairs is 16/3 ≈ 5.33, which the paper rounds to 6).
        let (avg, max) = hop_profile(&Mesh::d2(8, 8));
        assert_eq!(max, 14);
        assert!((avg - 16.0 / 3.0).abs() < 1e-9, "avg={avg}");
    }

    #[test]
    fn torus_distances_halve_the_mesh_worst_case() {
        let (_, max) = hop_profile(&Torus::d2(8, 8));
        assert_eq!(max, 8);
    }

    #[test]
    fn coords_round_trip() {
        let g = Grid::new(vec![4, 3, 2], false);
        for i in 0..24 {
            assert_eq!(g.index(&g.coords(i)), i);
        }
    }

    #[test]
    fn torus_dateline_switches_class_once_per_dimension() {
        let g = Grid::new(vec![4, 4], true);
        let src = NodeId::new(3); // (3, 0)
        let dst = NodeId::new(5); // (1, 1)
        let mut state = g.init_route(src, dst);
        // Positive X is the shortest way (3 -> 0 -> 1): crosses the wrap.
        assert!(state.dir_bits & 1 != 0);
        let mut out = Vec::new();
        g.route(3, dst, &state, &mut out);
        assert_eq!(out[0].vc, VcSel::Class(0));
        g.on_hop(3, out[0].port, &mut state); // wrap hop 3->0
        assert_eq!(state.vc_class, 1);
        out.clear();
        g.route(0, dst, &state, &mut out);
        assert_eq!(out[0].vc, VcSel::Class(1));
        g.on_hop(0, out[0].port, &mut state); // 0 -> 1, no wrap
        assert_eq!(state.vc_class, 1);
        // Entering dimension Y resets to class 0.
        out.clear();
        g.route(1, dst, &state, &mut out);
        assert_eq!(out[0].vc, VcSel::Class(0));
    }

    #[test]
    fn mesh_edge_has_no_phantom_routes() {
        // Routing from a corner must never pick a placeholder self-link.
        let g = Grid::new(vec![4, 4], false);
        let mut out = Vec::new();
        g.route(0, NodeId::new(15), &RouteState::default(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, port_for(0, true));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_dimension() {
        let _ = Mesh::d2(1, 8);
    }
}
