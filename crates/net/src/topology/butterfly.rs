//! Radix-4 butterflies and multibutterflies (indirect, unidirectional).
//!
//! A 4-ary n-fly has `n = log4(N)` stages of `N/4` routers. Packets enter
//! stage 0 (router `src/4`), pick output direction `digit_{n-1-s}(dst)` at
//! stage `s`, and eject to the node from the last stage. With dilation 1
//! (the plain butterfly) each direction has exactly one link — a unique
//! path, so delivery is in order but there is no way around a hot spot.
//! With dilation 2 (the multibutterfly) each direction has two links wired
//! to randomly chosen routers of the valid "splitter" set, giving the
//! adaptive multipath the METRO/multibutterfly literature exploits.
//!
//! The wiring invariant is the same replace-digit scheme as the fat tree:
//! a stage-`s` link in direction `j` must land on a stage-`s+1` router whose
//! digit `n-2-s` equals `j` and whose higher digits match the current
//! router; lower digits are free (randomized in the multibutterfly).

use nifdy_sim::{NodeId, SimRng};

use super::{Candidate, Endpoint, FabricSpec, NodeAttach, RouteState, RouterSpec, Topology};

const K: usize = 4;

/// A radix-4 butterfly (`dilation` 1) or multibutterfly (`dilation` 2).
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{Butterfly, Topology};
/// use nifdy_sim::NodeId;
///
/// let bfly = Butterfly::new(64, 1, 0);
/// // "Every packet travels only three hops."
/// assert_eq!(bfly.hops(NodeId::new(0), NodeId::new(63)), 3);
/// assert!(!bfly.reorders());
///
/// let mbfly = Butterfly::new(64, 2, 7);
/// assert!(mbfly.reorders());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Butterfly {
    nodes: usize,
    stages: usize,
    dilation: usize,
    wiring_seed: u64,
}

impl Butterfly {
    /// Creates a butterfly over `nodes` nodes with the given `dilation`;
    /// `wiring_seed` randomizes the multibutterfly wiring (ignored for
    /// dilation 1).
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of 4 (≥ 16) and `dilation` is 1 or 2.
    pub fn new(nodes: usize, dilation: usize, wiring_seed: u64) -> Self {
        let mut stages = 0;
        let mut n = 1;
        while n < nodes {
            n *= K;
            stages += 1;
        }
        assert!(
            n == nodes && stages >= 2,
            "butterfly size must be a power of 4, at least 16 (got {nodes})"
        );
        assert!(
            dilation == 1 || dilation == 2,
            "dilation must be 1 or 2 (got {dilation})"
        );
        Butterfly {
            nodes,
            stages,
            dilation,
            wiring_seed,
        }
    }

    fn per_stage(&self) -> usize {
        self.nodes / K
    }

    fn stage_of(&self, router: u32) -> (usize, usize) {
        let per = self.per_stage();
        ((router as usize) / per, (router as usize) % per)
    }

    fn router_id(&self, stage: usize, w: usize) -> u32 {
        (stage * self.per_stage() + w) as u32
    }

    /// All valid stage-`s+1` targets for direction `j` out of router `w` at
    /// stage `s`: digit `n-2-s` forced to `j`, higher digits preserved,
    /// lower digits free.
    fn valid_targets(&self, s: usize, w: usize, j: usize) -> Vec<usize> {
        let pos = self.stages - 2 - s;
        let low_span = K.pow(pos as u32);
        let base = (w / (low_span * K)) * (low_span * K) + j * low_span;
        (0..low_span).map(|low| base + low).collect()
    }
}

impl Topology for Butterfly {
    fn name(&self) -> String {
        if self.dilation == 1 {
            format!("radix-4 butterfly ({} nodes)", self.nodes)
        } else {
            format!(
                "radix-4 multibutterfly d{} ({} nodes)",
                self.dilation, self.nodes
            )
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn spec(&self) -> FabricSpec {
        let per = self.per_stage();
        let mut rng = SimRng::from_seed_stream(self.wiring_seed, 0xB17E);
        // Reserve injection in-ports 0..K at stage 0.
        let mut in_count: Vec<u8> = (0..self.stages * per)
            .map(|r| if r < per { K as u8 } else { 0 })
            .collect();
        let mut links: Vec<Vec<Endpoint>> = vec![Vec::new(); self.stages * per];

        for s in 0..self.stages {
            for w in 0..per {
                let rid = self.router_id(s, w) as usize;
                if s == self.stages - 1 {
                    // Last stage ejects straight to nodes, dilation 1.
                    for j in 0..K {
                        links[rid].push(Endpoint::Node((w * K + j) as u32));
                    }
                    continue;
                }
                for j in 0..K {
                    let valid = self.valid_targets(s, w, j);
                    for copy in 0..self.dilation {
                        // Plain butterfly keeps the canonical wiring (lower
                        // digits preserved); the multibutterfly randomizes,
                        // drawing distinct targets while possible.
                        let t = if self.dilation == 1 {
                            let pos = self.stages - 2 - s;
                            let low_span = K.pow(pos as u32);
                            (w / (low_span * K)) * (low_span * K) + j * low_span + (w % low_span)
                        } else if valid.len() >= self.dilation {
                            // Sample without replacement across copies.
                            loop {
                                let cand = *rng.choose(&valid).expect("nonempty");
                                let target = self.router_id(s + 1, cand);
                                let dup = links[rid]
                                    .iter()
                                    .rev()
                                    .take(copy)
                                    .any(|e| matches!(e, Endpoint::Router { router, .. } if *router == target));
                                if !dup {
                                    break cand;
                                }
                            }
                        } else {
                            valid[copy % valid.len()]
                        };
                        let target = self.router_id(s + 1, t);
                        let in_port = in_count[target as usize];
                        in_count[target as usize] += 1;
                        links[rid].push(Endpoint::Router {
                            router: target,
                            in_port,
                        });
                    }
                }
            }
        }

        let routers: Vec<RouterSpec> = links
            .into_iter()
            .zip(in_count)
            .map(|(links, in_ports)| RouterSpec { in_ports, links })
            .collect();

        let mut attaches = Vec::with_capacity(self.nodes);
        let last = self.stages - 1;
        for node in 0..self.nodes {
            attaches.push(NodeAttach {
                inj_router: self.router_id(0, node / K),
                inj_port: (node % K) as u8,
                ej_router: self.router_id(last, node / K),
                ej_port: (node % K) as u8,
            });
        }
        FabricSpec { routers, attaches }
    }

    fn route(&self, router: u32, dst: NodeId, _state: &RouteState, out: &mut Vec<Candidate>) {
        let (s, _) = self.stage_of(router);
        // Direction = base-4 digit (stages-1-s) of the node address.
        let dir = (dst.index() / K.pow((self.stages - 1 - s) as u32)) % K;
        if s == self.stages - 1 {
            out.push(Candidate::any(dir as u8));
        } else {
            for copy in 0..self.dilation {
                out.push(Candidate::any((dir * self.dilation + copy) as u8));
            }
        }
    }

    fn hops(&self, _a: NodeId, _b: NodeId) -> u32 {
        // Indirect network: every packet crosses all stages.
        self.stages as u32
    }

    fn reorders(&self) -> bool {
        self.dilation > 1
    }
}

#[cfg(test)]
mod tests {
    use super::super::checks::{check_all_candidates_deliver, check_routing_delivers, check_spec};
    use super::*;

    #[test]
    fn butterfly_spec_is_well_formed() {
        check_spec(&Butterfly::new(16, 1, 0));
        check_spec(&Butterfly::new(64, 1, 0));
    }

    #[test]
    fn multibutterfly_spec_is_well_formed() {
        check_spec(&Butterfly::new(64, 2, 1));
        check_spec(&Butterfly::new(64, 2, 99)); // different wiring, same invariants
    }

    #[test]
    fn butterfly_routing_delivers() {
        check_routing_delivers(&Butterfly::new(16, 1, 0), 2);
        check_routing_delivers(&Butterfly::new(64, 1, 0), 3);
    }

    #[test]
    fn multibutterfly_all_paths_deliver() {
        check_all_candidates_deliver(&Butterfly::new(64, 2, 5), 3);
    }

    #[test]
    fn dilation_two_doubles_internal_links() {
        let d1 = Butterfly::new(64, 1, 0).spec();
        let d2 = Butterfly::new(64, 2, 0).spec();
        assert_eq!(d2.num_internal_links(), 2 * d1.num_internal_links());
    }

    #[test]
    fn multibutterfly_offers_distinct_first_stage_targets() {
        let spec = Butterfly::new(64, 2, 3).spec();
        // Stage-0 router 0, direction 0 = links 0 and 1: distinct routers.
        let (a, b) = (&spec.routers[0].links[0], &spec.routers[0].links[1]);
        match (a, b) {
            (Endpoint::Router { router: ra, .. }, Endpoint::Router { router: rb, .. }) => {
                assert_ne!(ra, rb)
            }
            other => panic!("unexpected endpoints {other:?}"),
        }
    }

    #[test]
    fn valid_targets_respect_the_splitter_invariant() {
        let b = Butterfly::new(64, 2, 0);
        // Stage 0, router 5 (digits 1,1), direction 2: digit 1 forced to 2,
        // digit 0 free -> routers 8 + 0..4 = {8, 9, 10, 11}.
        assert_eq!(b.valid_targets(0, 5, 2), vec![8, 9, 10, 11]);
        // Stage 1: no free digits, single target.
        assert_eq!(b.valid_targets(1, 5, 2).len(), 1);
    }

    #[test]
    #[should_panic(expected = "dilation")]
    fn rejects_large_dilation() {
        let _ = Butterfly::new(64, 3, 0);
    }
}
