//! Minimally adaptive 2-D mesh using the west-first turn model — the §6.3
//! future-work experiment: "we plan to extend the simulator to study how
//! NIFDY interacts with adaptive routing on a mesh, which in the past has
//! not performed well enough to justify its expense. Adding the admission
//! control and in-order delivery of NIFDY may help adaptive routing reach
//! its potential."
//!
//! West-first routing (Glass & Ni's turn model) forbids the two turns into
//! the west direction: a packet that must travel west (−x) does so *first*,
//! deterministically; once heading east or aligned in x, it may choose
//! adaptively among the productive {+x, +y, −y} directions. This breaks all
//! cycles with a single virtual channel, while giving east-bound traffic
//! multiple paths — and therefore the possibility of out-of-order delivery,
//! which is exactly where NIFDY's reorder machinery earns its keep on a
//! mesh.

use nifdy_sim::NodeId;

use super::{Candidate, FabricSpec, Mesh, RouteState, Topology};

/// A 2-D mesh with west-first minimally-adaptive routing.
///
/// Structure (routers, links, ports) is identical to [`Mesh`]; only the
/// routing function differs.
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{AdaptiveMesh, Topology};
///
/// let m = AdaptiveMesh::d2(8, 8);
/// assert_eq!(m.num_nodes(), 64);
/// // Adaptive choices make reordering possible — unlike the plain mesh.
/// assert!(m.reorders());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveMesh {
    base: Mesh,
    x: usize,
    y: usize,
}

impl AdaptiveMesh {
    /// Creates an `x` by `y` adaptive mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn d2(x: usize, y: usize) -> Self {
        AdaptiveMesh {
            base: Mesh::d2(x, y),
            x,
            y,
        }
    }

    fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.x, idx / self.x)
    }
}

// Port numbering shared with the mesh: 0 = node, 1 = +x (east), 2 = −x
// (west), 3 = +y (north), 4 = −y (south).
const EAST: u8 = 1;
const WEST: u8 = 2;
const NORTH: u8 = 3;
const SOUTH: u8 = 4;

impl Topology for AdaptiveMesh {
    fn name(&self) -> String {
        format!("{}x{} adaptive mesh (west-first)", self.x, self.y)
    }

    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    fn spec(&self) -> FabricSpec {
        self.base.spec()
    }

    fn route(&self, router: u32, dst: NodeId, _state: &RouteState, out: &mut Vec<Candidate>) {
        let (cx, cy) = self.coords(router as usize);
        let (tx, ty) = self.coords(dst.index());
        if cx == tx && cy == ty {
            out.push(Candidate::any(0)); // eject
            return;
        }
        // West-first: any westward component is consumed first and alone.
        if tx < cx {
            out.push(Candidate::any(WEST));
            return;
        }
        // Otherwise: fully adaptive among the productive directions.
        if tx > cx {
            out.push(Candidate::any(EAST));
        }
        if ty > cy {
            out.push(Candidate::any(NORTH));
        } else if ty < cy {
            out.push(Candidate::any(SOUTH));
        }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        // Minimal routing: Manhattan distance, as on the plain mesh.
        self.base.hops(a, b)
    }

    fn reorders(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::checks::{check_all_candidates_deliver, check_routing_delivers, check_spec};
    use super::super::hop_profile;
    use super::*;

    #[test]
    fn spec_is_well_formed() {
        check_spec(&AdaptiveMesh::d2(4, 4));
        check_spec(&AdaptiveMesh::d2(8, 8));
    }

    #[test]
    fn routing_delivers_everywhere() {
        check_routing_delivers(&AdaptiveMesh::d2(4, 4), 8);
    }

    #[test]
    fn every_adaptive_choice_delivers() {
        check_all_candidates_deliver(&AdaptiveMesh::d2(4, 4), 8);
        check_all_candidates_deliver(&AdaptiveMesh::d2(8, 8), 16);
    }

    #[test]
    fn west_moves_are_deterministic_east_moves_adaptive() {
        let m = AdaptiveMesh::d2(4, 4);
        let mut out = Vec::new();
        // Router (2,2) = 10 heading to (0,0) = 0: west only.
        m.route(10, NodeId::new(0), &RouteState::default(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, WEST);
        // Router (0,0) heading to (2,2) = 10: east or north.
        out.clear();
        m.route(0, NodeId::new(10), &RouteState::default(), &mut out);
        let ports: Vec<u8> = out.iter().map(|c| c.port).collect();
        assert_eq!(ports, vec![EAST, NORTH]);
    }

    #[test]
    fn distance_profile_matches_the_plain_mesh() {
        let (avg_a, max_a) = hop_profile(&AdaptiveMesh::d2(8, 8));
        let (avg_m, max_m) = hop_profile(&super::super::Mesh::d2(8, 8));
        assert_eq!(max_a, max_m);
        assert!((avg_a - avg_m).abs() < 1e-9);
    }

    #[test]
    fn turn_model_is_deadlock_free_under_stress() {
        // All-pairs random traffic with a single VC must fully drain; a
        // broken turn model would wedge.
        use crate::{Fabric, FabricConfig, Lane, Packet};
        use nifdy_sim::{PacketId, SimRng};
        let mut fab = Fabric::new(
            Box::new(AdaptiveMesh::d2(4, 4)),
            FabricConfig::default().with_seed(9),
        );
        let mut rng = SimRng::from_seed_stream(42, 0);
        let mut injected = 0u64;
        let mut ejected = 0u64;
        for _ in 0..60_000 {
            for n in 0..16 {
                let src = NodeId::new(n);
                if injected < 400 && rng.gen_bool(0.1) && fab.can_inject(src, Lane::Request) {
                    injected += 1;
                    let mut dst = rng.gen_range_usize(0..15);
                    if dst >= n {
                        dst += 1;
                    }
                    fab.inject(
                        src,
                        Packet::data(PacketId::new(injected), src, NodeId::new(dst), 8),
                    );
                }
                while fab.eject(src, Lane::Request).is_some() {
                    ejected += 1;
                }
            }
            fab.step();
            if injected == 400 && ejected == 400 {
                return;
            }
        }
        panic!("adaptive mesh wedged: {ejected}/{injected} drained");
    }
}
