//! Network topologies: structure (routers and links) plus routing logic.
//!
//! Each topology builds a [`FabricSpec`] — the static graph of routers,
//! links, and node attachment points — and supplies a routing function that
//! the fabric queries per hop. Adaptive topologies (fat trees going up,
//! multibutterflies) return several candidates and the fabric picks among
//! them; deterministic topologies return exactly one.

mod adaptive_mesh;
mod butterfly;
mod fattree;
mod mesh;

pub use adaptive_mesh::AdaptiveMesh;
pub use butterfly::Butterfly;
pub use fattree::{Cm5FatTree, FatTree};
pub use mesh::{Mesh, Torus};

use nifdy_sim::NodeId;

/// Where a router output link terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Another router's input port.
    Router {
        /// Destination router index.
        router: u32,
        /// Input-port index at the destination router.
        in_port: u8,
    },
    /// A node's ejection interface.
    Node(u32),
}

/// Static description of one router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterSpec {
    /// Number of input ports (including any node-injection ports).
    pub in_ports: u8,
    /// Output links; index in this vector is the output-port number.
    pub links: Vec<Endpoint>,
}

/// How a node attaches to the fabric.
///
/// Direct networks (meshes, tori, trees) attach injection and ejection to
/// the same router; indirect networks (butterflies) inject at stage 0 and
/// eject at the last stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAttach {
    /// Router receiving this node's injected flits.
    pub inj_router: u32,
    /// Input port at `inj_router` dedicated to this node.
    pub inj_port: u8,
    /// Router whose output port ejects to this node.
    pub ej_router: u32,
    /// Output port at `ej_router` dedicated to this node.
    pub ej_port: u8,
}

/// The full static graph of a fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSpec {
    /// All routers; index is the router id.
    pub routers: Vec<RouterSpec>,
    /// Attachment points, indexed by node.
    pub attaches: Vec<NodeAttach>,
}

impl FabricSpec {
    /// Total number of unidirectional router-to-router links.
    pub fn num_internal_links(&self) -> usize {
        self.routers
            .iter()
            .flat_map(|r| &r.links)
            .filter(|e| matches!(e, Endpoint::Router { .. }))
            .count()
    }
}

/// Virtual-channel selection constraint attached to a route candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcSel {
    /// Any virtual channel of the packet's lane may be allocated.
    Any,
    /// Only VC class `k` of the lane may be used (e.g. torus dateline
    /// classes).
    Class(u8),
}

/// One permissible next hop for a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Output port to take.
    pub port: u8,
    /// Virtual-channel constraint on that port.
    pub vc: VcSel,
}

impl Candidate {
    /// Candidate on `port` with no VC constraint.
    pub const fn any(port: u8) -> Self {
        Candidate {
            port,
            vc: VcSel::Any,
        }
    }
}

/// Per-worm routing state carried through the network.
///
/// Dimension-order tori lock the travel direction per dimension at injection
/// and switch dateline VC classes when crossing a wraparound link; other
/// topologies leave this at the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteState {
    /// Per-dimension direction bits chosen at injection (1 = positive).
    pub dir_bits: u8,
    /// Current dateline VC class.
    pub vc_class: u8,
    /// Topology-private scratch (e.g. the dimension currently being
    /// traversed, so datelines reset between dimensions).
    pub aux: u8,
}

/// A network topology: static structure plus per-hop routing.
///
/// This trait is object-safe; fabrics store a `Box<dyn Topology>`.
///
/// `Send` is a supertrait so a boxed topology (and therefore a whole
/// `Fabric`) can move into a worker thread when experiment cells run in
/// parallel; implementations are plain owned data, so this costs nothing.
pub trait Topology: std::fmt::Debug + Send {
    /// Short human-readable name ("8x8 mesh", "4-ary fat tree (64)").
    fn name(&self) -> String;

    /// Number of attached nodes.
    fn num_nodes(&self) -> usize;

    /// Builds the static router/link graph.
    fn spec(&self) -> FabricSpec;

    /// Initial routing state for a packet from `src` to `dst`.
    fn init_route(&self, src: NodeId, dst: NodeId) -> RouteState {
        let _ = (src, dst);
        RouteState::default()
    }

    /// Appends the permissible next hops at `router` for a packet headed to
    /// `dst` with routing state `state`. Candidates must be non-empty for
    /// every reachable destination.
    fn route(&self, router: u32, dst: NodeId, state: &RouteState, out: &mut Vec<Candidate>);

    /// Updates routing state when the head flit departs `router` via `port`
    /// (e.g. switching dateline VC class on a wraparound hop).
    fn on_hop(&self, router: u32, port: u8, state: &mut RouteState) {
        let _ = (router, port, state);
    }

    /// Number of link hops (per this topology's own convention, matching the
    /// paper's Table 3) between two nodes.
    fn hops(&self, a: NodeId, b: NodeId) -> u32;

    /// Whether this topology can deliver packets of one sender/receiver pair
    /// out of order (multiple paths or multiple VCs). Single-path,
    /// single-VC networks (the mesh with one VC, the butterfly) deliver in
    /// order by construction; in the paper such networks get no in-order
    /// benefit from NIFDY.
    fn reorders(&self) -> bool;

    /// Minimum virtual channels per lane this topology needs for deadlock
    /// freedom (tori need 2 for their dateline classes).
    fn min_vcs_per_lane(&self) -> u8 {
        1
    }
}

/// Computes the average and maximum hop count over all ordered node pairs.
///
/// Used to reproduce the distance columns of Table 3.
///
/// # Examples
///
/// ```
/// use nifdy_net::topology::{hop_profile, Mesh};
///
/// let mesh = Mesh::d2(8, 8);
/// let (avg, max) = hop_profile(&mesh);
/// assert_eq!(max, 14);
/// // 16/3 over ordered pairs excluding self (the paper rounds to 6).
/// assert!((avg - 16.0 / 3.0).abs() < 0.01);
/// ```
pub fn hop_profile(topo: &dyn Topology) -> (f64, u32) {
    let n = topo.num_nodes();
    let mut total = 0u64;
    let mut max = 0u32;
    let mut pairs = 0u64;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let h = topo.hops(NodeId::new(a), NodeId::new(b));
            total += u64::from(h);
            max = max.max(h);
            pairs += 1;
        }
    }
    (total as f64 / pairs as f64, max)
}

#[cfg(test)]
pub(crate) mod checks {
    //! Shared structural validation used by every topology's tests.

    use super::*;
    use std::collections::BTreeSet;

    /// Asserts structural sanity of a spec: link endpoints in range, node
    /// attaches consistent, each router input port fed by at most one link,
    /// every node has exactly one injection and one ejection point.
    pub fn check_spec(topo: &dyn Topology) {
        let spec = topo.spec();
        let nodes = topo.num_nodes();
        assert_eq!(spec.attaches.len(), nodes, "one attach per node");

        // Every link endpoint must exist.
        let mut fed: BTreeSet<(u32, u8)> = BTreeSet::new();
        let mut ejected: BTreeSet<u32> = BTreeSet::new();
        for (r, router) in spec.routers.iter().enumerate() {
            for link in &router.links {
                match *link {
                    Endpoint::Router { router: t, in_port } => {
                        assert!(
                            (t as usize) < spec.routers.len(),
                            "router {r} links to missing router {t}"
                        );
                        assert!(
                            in_port < spec.routers[t as usize].in_ports,
                            "router {r} links to missing in-port {in_port} of router {t}"
                        );
                        assert!(
                            fed.insert((t, in_port)),
                            "input port ({t},{in_port}) fed by two links"
                        );
                    }
                    Endpoint::Node(node) => {
                        assert!((node as usize) < nodes, "eject link to missing node {node}");
                        assert!(ejected.insert(node), "node {node} has two ejection links");
                    }
                }
            }
        }
        for (n, at) in spec.attaches.iter().enumerate() {
            assert!((at.inj_router as usize) < spec.routers.len());
            assert!(at.inj_port < spec.routers[at.inj_router as usize].in_ports);
            assert!(
                fed.insert((at.inj_router, at.inj_port)),
                "node {n} injection port also fed by a link"
            );
            let ej = &spec.routers[at.ej_router as usize];
            assert!(
                (at.ej_port as usize) < ej.links.len(),
                "node {n} ejection port missing"
            );
            assert_eq!(
                ej.links[at.ej_port as usize],
                Endpoint::Node(n as u32),
                "node {n} ejection port does not point back at the node"
            );
        }
    }

    /// Follows the routing function from every source to every destination,
    /// asserting delivery within `max_hops` router traversals. Always takes
    /// the first candidate (the fabric may pick any).
    pub fn check_routing_delivers(topo: &dyn Topology, max_hops: u32) {
        let spec = topo.spec();
        let n = topo.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let src = NodeId::new(a);
                let dst = NodeId::new(b);
                let mut state = topo.init_route(src, dst);
                let mut router = spec.attaches[a].inj_router;
                let mut hops = 0;
                loop {
                    assert!(
                        hops <= max_hops,
                        "{}: route {a}->{b} exceeded {max_hops} hops",
                        topo.name()
                    );
                    let mut cands = Vec::new();
                    topo.route(router, dst, &state, &mut cands);
                    assert!(
                        !cands.is_empty(),
                        "{}: no route at router {router} for {a}->{b}",
                        topo.name()
                    );
                    let port = cands[0].port;
                    topo.on_hop(router, port, &mut state);
                    match spec.routers[router as usize].links[port as usize] {
                        Endpoint::Node(node) => {
                            assert_eq!(node as usize, b, "{}: misdelivery {a}->{b}", topo.name());
                            break;
                        }
                        Endpoint::Router { router: t, .. } => {
                            router = t;
                            hops += 1;
                        }
                    }
                }
            }
        }
    }

    /// Exhaustively follows *every* candidate combination breadth-first,
    /// asserting that all adaptive choices still deliver correctly.
    pub fn check_all_candidates_deliver(topo: &dyn Topology, max_hops: u32) {
        let spec = topo.spec();
        let n = topo.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let src = NodeId::new(a);
                let dst = NodeId::new(b);
                let mut frontier = vec![(spec.attaches[a].inj_router, topo.init_route(src, dst))];
                let mut hops = 0;
                while !frontier.is_empty() {
                    assert!(
                        hops <= max_hops,
                        "{}: adaptive route {a}->{b} exceeded {max_hops} hops",
                        topo.name()
                    );
                    let mut next = Vec::new();
                    for (router, state) in frontier {
                        let mut cands = Vec::new();
                        topo.route(router, dst, &state, &mut cands);
                        assert!(!cands.is_empty());
                        for c in cands {
                            let mut s2 = state;
                            topo.on_hop(router, c.port, &mut s2);
                            match spec.routers[router as usize].links[c.port as usize] {
                                Endpoint::Node(node) => {
                                    assert_eq!(node as usize, b);
                                }
                                Endpoint::Router { router: t, .. } => next.push((t, s2)),
                            }
                        }
                    }
                    next.sort_by_key(|(r, s)| (*r, s.dir_bits, s.vc_class, s.aux));
                    next.dedup();
                    frontier = next;
                    hops += 1;
                }
            }
        }
    }
}
