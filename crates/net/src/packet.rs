//! The simulated wire format.
//!
//! The paper fixes what travels in a packet header: the source node ID (so
//! the destination can return an ack), a *bulk-request* bit, a *bulk-exit*
//! bit, and — for packets inside a bulk dialog — a `{sequence number, dialog
//! number}` pair that replaces the source-identifier bits. Acks carry a bulk
//! grant (or rejection), or a cumulative window acknowledgment. This module
//! defines those fields as plain Rust data; the `nifdy` crate implements the
//! protocol that interprets them, and the fabric in this crate transports
//! them opaquely.

use nifdy_sim::{Cycle, NodeId, PacketId};

/// The two logically independent networks every topology provides
/// ("the *request network* and the *reply network*, in order to deal with
/// fetch deadlock").
///
/// All workload data travels on [`Lane::Request`]; NIFDY acknowledgments
/// travel on [`Lane::Reply`] and are consumed by the receiving NIFDY unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The request network (workload data packets).
    Request = 0,
    /// The reply network (protocol acknowledgments, user replies).
    Reply = 1,
}

impl Lane {
    /// Both lanes, in index order.
    pub const ALL: [Lane; 2] = [Lane::Request, Lane::Reply];

    /// The lane's index (0 = request, 1 = reply).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The inverse of [`Lane::index`]: 0 is the request lane, 1 the reply
    /// lane, anything else is an [`InvalidLane`] error. Use this instead of
    /// matching on raw indices so every decoder shares one error path.
    #[inline]
    pub const fn from_index(index: usize) -> Result<Lane, InvalidLane> {
        match index {
            0 => Ok(Lane::Request),
            1 => Ok(Lane::Reply),
            other => Err(InvalidLane(other)),
        }
    }
}

/// Error returned by [`Lane::from_index`] for an index outside `0..2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLane(pub usize);

impl core::fmt::Display for InvalidLane {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid lane index {} (lanes are 0..2)", self.0)
    }
}

impl std::error::Error for InvalidLane {}

/// Identifier of a bulk dialog slot at a receiver (`0..D`).
pub type DialogId = u8;

/// Sequence number inside a bulk dialog window.
///
/// The paper notes sequence numbers *"need only be as large as W"*; we carry
/// a byte and reduce modulo the window in the protocol layer.
pub type SeqNo = u8;

/// The `{sequence number, dialog number}` pair carried by bulk-mode data
/// packets in place of the source-identifier bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BulkTag {
    /// Which of the receiver's dialog slots this packet belongs to.
    pub dialog: DialogId,
    /// Position in the sender's bulk stream, modulo the sequence space.
    pub seq: SeqNo,
}

/// Outcome of a bulk-mode request, carried inside a scalar ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BulkGrant {
    /// The data packet did not request bulk mode.
    #[default]
    NotRequested,
    /// Bulk mode granted: dialog slot and the receiver's window size.
    Granted {
        /// Assigned dialog slot at the receiver.
        dialog: DialogId,
        /// Receiver window size `W` (number of reorder buffers reserved).
        window: u8,
    },
    /// The receiver is already at its maximum of `D` dialogs; keep sending
    /// scalar packets (and optionally keep requesting).
    Rejected,
}

/// Protocol fields of an acknowledgment packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AckInfo {
    /// Acknowledges a single scalar packet, clearing the sender's OPT entry.
    Scalar {
        /// Bulk-mode grant decision for the acked packet's request bit.
        grant: BulkGrant,
        /// Echo of the acknowledged packet's alternating duplicate bit, so
        /// the sender can tell a stale re-ack (for an earlier, spuriously
        /// retransmitted packet) from the ack of the packet currently
        /// outstanding. Always `false` when retransmission is disabled.
        echo: bool,
    },
    /// Combined (sliding-window) acknowledgment for a bulk dialog: everything
    /// up to and including `cum_seq` has been received in order.
    Bulk {
        /// Dialog slot being acknowledged.
        dialog: DialogId,
        /// Highest in-order sequence number received.
        cum_seq: SeqNo,
        /// Receiver-initiated dialog termination ("a receiver can also
        /// terminate a bulk dialog, in which case the transmission continues
        /// in scalar mode").
        terminate: bool,
    },
}

/// Protocol header of a packet, as interpreted by the NIFDY units at the
/// edges. The network fabric transports this opaquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wire {
    /// A data packet.
    Data {
        /// Sender requests a bulk dialog (§2.1.2).
        bulk_request: bool,
        /// Sender exits bulk mode with this packet (last packet of a dialog).
        bulk_exit: bool,
        /// Present iff the packet was sent inside a bulk dialog.
        bulk: Option<BulkTag>,
        /// Cleared for packets that bypass the NIFDY protocol (§6.1 no-ack
        /// extension); the receiver then returns no acknowledgment.
        needs_ack: bool,
        /// Alternating duplicate-detection bit for the lossy-network
        /// retransmission extension (§6.2).
        dup_bit: bool,
        /// §6.1 extension: an acknowledgment piggybacked on this data
        /// packet ("instead of sending both a NIFDY-generated ack and a
        /// user reply we could piggyback the ack in the reply"). Adds only
        /// a header bit plus the ack fields in hardware.
        piggy_ack: Option<AckInfo>,
    },
    /// A NIFDY-generated acknowledgment, consumed by the receiving NIFDY unit.
    Ack(AckInfo),
}

impl Wire {
    /// A plain scalar data packet with no special bits set.
    pub const PLAIN_DATA: Wire = Wire::Data {
        bulk_request: false,
        bulk_exit: false,
        bulk: None,
        needs_ack: true,
        dup_bit: false,
        piggy_ack: None,
    };

    /// Returns `true` for acknowledgment packets.
    #[inline]
    pub const fn is_ack(&self) -> bool {
        matches!(self, Wire::Ack(_))
    }
}

/// Workload-level annotation riding along with a data packet.
///
/// This is *payload*, not protocol: the NIFDY unit never inspects it. The
/// workloads use it to verify in-order delivery and to account for useful
/// bytes delivered (the in-order payload benefit of §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UserData {
    /// Message this packet belongs to (unique per sender).
    pub msg_id: u64,
    /// Index of this packet within its message (0-based).
    pub pkt_index: u32,
    /// Total packets in the message.
    pub msg_packets: u32,
    /// Useful payload words carried (excludes header/bookkeeping words).
    pub user_words: u16,
}

/// Timing stamps for latency accounting. Not part of the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketStamp {
    /// Cycle the packet was handed to the NIC by the processor.
    pub created: Cycle,
    /// Cycle injection into the fabric began.
    pub injected: Cycle,
}

/// A packet, the unit of transfer between network interfaces.
///
/// Packets are serialized into `size_words` flits (one 32-bit word each) for
/// transport. The synthetic workloads use 8-word packets including the
/// header; the library-driven workloads (C-shift, EM3D, radix sort) use
/// 6-word packets, as in the paper.
///
/// # Examples
///
/// ```
/// use nifdy_net::{Lane, Packet, Wire};
/// use nifdy_sim::{NodeId, PacketId};
///
/// let pkt = Packet::data(PacketId::new(0), NodeId::new(1), NodeId::new(2), 8);
/// assert_eq!(pkt.size_words, 8);
/// assert_eq!(pkt.lane, Lane::Request);
/// assert!(!pkt.wire.is_ack());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Simulation-unique identifier (bookkeeping only).
    pub id: PacketId,
    /// Sending node. The paper requires the source ID in every header so the
    /// destination can return an ack.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Logical network the packet travels on.
    pub lane: Lane,
    /// Packet length in 32-bit words (= flits), including the header word.
    pub size_words: u16,
    /// Protocol header fields.
    pub wire: Wire,
    /// Workload annotation (opaque to the protocol).
    pub user: UserData,
    /// Latency accounting stamps.
    pub stamp: PacketStamp,
}

/// Length of an acknowledgment packet in words: a single header word (the
/// destination/source identifiers plus the few grant/window bits fit the
/// paper's minimal ack).
pub const ACK_WORDS: u16 = 1;

impl Packet {
    /// Creates a plain scalar data packet of `size_words` words on the
    /// request lane.
    ///
    /// # Panics
    ///
    /// Panics if `size_words` is zero.
    pub fn data(id: PacketId, src: NodeId, dst: NodeId, size_words: u16) -> Self {
        assert!(size_words > 0, "packets must be at least one word long");
        Packet {
            id,
            src,
            dst,
            lane: Lane::Request,
            size_words,
            wire: Wire::PLAIN_DATA,
            user: UserData::default(),
            stamp: PacketStamp::default(),
        }
    }

    /// Creates an acknowledgment packet on the reply lane.
    pub fn ack(id: PacketId, src: NodeId, dst: NodeId, info: AckInfo) -> Self {
        Packet {
            id,
            src,
            dst,
            lane: Lane::Reply,
            size_words: ACK_WORDS,
            wire: Wire::Ack(info),
            user: UserData::default(),
            stamp: PacketStamp::default(),
        }
    }

    /// Number of flits this packet serializes into.
    #[inline]
    pub fn flits(&self) -> u16 {
        self.size_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_index_correctly() {
        assert_eq!(Lane::Request.index(), 0);
        assert_eq!(Lane::Reply.index(), 1);
        assert_eq!(Lane::ALL.len(), 2);
    }

    #[test]
    fn lane_from_index_round_trips() {
        for lane in Lane::ALL {
            assert_eq!(Lane::from_index(lane.index()), Ok(lane));
        }
        assert_eq!(Lane::from_index(2), Err(InvalidLane(2)));
        assert_eq!(Lane::from_index(usize::MAX), Err(InvalidLane(usize::MAX)));
        let msg = InvalidLane(7).to_string();
        assert!(msg.contains('7'), "error should name the bad index: {msg}");
    }

    #[test]
    fn data_packet_defaults() {
        let p = Packet::data(PacketId::new(1), NodeId::new(0), NodeId::new(5), 6);
        assert_eq!(p.flits(), 6);
        assert_eq!(p.wire, Wire::PLAIN_DATA);
        assert!(!p.wire.is_ack());
    }

    #[test]
    fn ack_packet_is_on_reply_lane() {
        let a = Packet::ack(
            PacketId::new(2),
            NodeId::new(5),
            NodeId::new(0),
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: false,
            },
        );
        assert_eq!(a.lane, Lane::Reply);
        assert_eq!(a.size_words, ACK_WORDS);
        assert!(a.wire.is_ack());
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_length_packet_rejected() {
        let _ = Packet::data(PacketId::new(0), NodeId::new(0), NodeId::new(1), 0);
    }

    #[test]
    fn bulk_grant_default_is_not_requested() {
        assert_eq!(BulkGrant::default(), BulkGrant::NotRequested);
    }
}
