//! Flit-level interconnection-network fabrics for the NIFDY reproduction.
//!
//! The NIFDY paper (Callahan & Goldstein, ISCA '95) evaluates its network
//! interface over "a variety of network fabrics, including meshes, tori,
//! butterflies, and fat trees". This crate implements those fabrics at flit
//! granularity:
//!
//! * [`topology`] — the static structure and routing of each network:
//!   [`Mesh`](topology::Mesh), [`Torus`](topology::Torus),
//!   [`FatTree`](topology::FatTree), [`Cm5FatTree`](topology::Cm5FatTree),
//!   and [`Butterfly`](topology::Butterfly) (dilation 1 or 2).
//! * [`Fabric`] — the cycle-stepped router machinery: virtual channels,
//!   credit-based link flow control, wormhole / virtual cut-through /
//!   store-and-forward switching ([`SwitchingPolicy`]), and the two logical
//!   request/reply networks ([`Lane`]), demand- or time-multiplexed.
//! * [`Packet`] / [`Wire`] — the simulated wire format, including the NIFDY
//!   protocol bits (bulk request/exit, `{seq, dialog}` tags, ack payloads)
//!   that the `nifdy` crate interprets at the edges.
//!
//! # Examples
//!
//! ```
//! use nifdy_net::topology::FatTree;
//! use nifdy_net::{Fabric, FabricConfig, Lane, Packet, SwitchingPolicy};
//! use nifdy_sim::{NodeId, PacketId};
//!
//! let cfg = FabricConfig::default()
//!     .with_policy(SwitchingPolicy::CutThrough)
//!     .with_vc_buf_flits(8);
//! let mut fab = Fabric::new(Box::new(FatTree::new(64)), cfg);
//! let (a, b) = (NodeId::new(0), NodeId::new(42));
//! fab.inject(a, Packet::data(PacketId::new(0), a, b, 6));
//! while fab.peek_eject(b, Lane::Request).is_none() {
//!     fab.step();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fabric;
mod fault;
mod packet;
mod port;
pub mod topology;

pub use config::{FabricConfig, SwitchingPolicy};
pub use fabric::{Fabric, FabricStats};
pub use fault::{DropCause, FaultConfig, FaultPlane, GilbertElliott, LinkWindow, TargetedDrop};
pub use packet::{
    AckInfo, BulkGrant, BulkTag, DialogId, InvalidLane, Lane, Packet, PacketStamp, SeqNo, UserData,
    Wire, ACK_WORDS,
};
pub use port::NetPort;
