//! The flit-level network fabric.
//!
//! A [`Fabric`] instantiates a [`Topology`](crate::topology::Topology) as a
//! set of routers with per-input-port virtual-channel buffers, credit-based
//! link-level flow control, and per-link flit serialization, stepped one
//! cycle at a time. Network interfaces interact with the fabric only at the
//! edges: [`Fabric::can_inject`]/[`Fabric::inject`] on the way in and
//! [`Fabric::eject`] on the way out. If a node does not drain its ejection
//! queue, flits back up into the routers — exactly the *secondary blocking*
//! the NIFDY protocol is designed to avoid.

use std::collections::VecDeque;

use nifdy_sim::metrics::{Counter, LogHistogram, Stats};

use nifdy_sim::{Cycle, NodeId, SimRng, Slab, SlabKey, Wakeup};
use nifdy_trace::{trace_event, DropReason, EventKind, TraceHandle};

use crate::config::{FabricConfig, SwitchingPolicy};
use crate::fault::{DropCause, FaultPlane};
use crate::packet::{Lane, Packet};
use crate::topology::{Candidate, Endpoint, RouteState, Topology, VcSel};

/// Worms live in a generational [`Slab`]: flits carry the key, stale keys
/// are detected instead of aliasing a recycled slot, and the steady state
/// recycles freed slots without allocating.
type WormId = SlabKey;

/// A packet in flight, with its routing state.
#[derive(Debug)]
struct Worm {
    packet: Packet,
    route: RouteState,
    flits: u16,
}

/// One flit of a worm. `idx == 0` is the head; `idx == flits - 1` the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit {
    worm: WormId,
    idx: u16,
}

/// State of one virtual channel at a router input port.
#[derive(Debug, Default)]
struct VcState {
    /// Buffered flits with their arrival cycles (a flit may be forwarded
    /// only on a later cycle, giving each router a one-cycle pipeline).
    buf: VecDeque<(Flit, Cycle)>,
    /// Output (port, vc) held by the worm currently traversing this VC.
    alloc: Option<(u8, u8)>,
    /// Cached route-candidate port mask for the unrouted head of `worm`
    /// waiting at the front of `buf`. Routing depends only on the worm's
    /// static route state, so the set of ports that may claim the head is
    /// stable while it waits — it is computed once, when the head reaches
    /// the front, and recorded here so releasing the head on commit can
    /// clear exactly the port bitsets it was distributed into.
    cand_ports: Option<(WormId, u64)>,
}

/// Who refills credit when this input VC pops a flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feeder {
    Router { router: u32, port: u8 },
    Node(u32),
    None,
}

#[derive(Debug)]
struct InPort {
    vcs: Vec<VcState>,
    feeder: Feeder,
}

#[derive(Debug)]
struct OutPort {
    dest: Endpoint,
    /// Free flit slots per downstream VC.
    credits: Vec<u16>,
    /// Worm currently owning each downstream VC (wormhole allocation).
    owner: Vec<Option<WormId>>,
    /// Flit on the wire per lane: (flit, downstream vc, cycles remaining).
    /// The two logical networks interleave on the physical link: strictly
    /// by cycle parity when time-multiplexed (CM-5), on demand otherwise.
    in_flight: [Option<(Flit, u8, u16)>; 2],
    /// Round-robin cursor over (in_port, vc) pairs.
    rr: u32,
    /// Demand-multiplex fairness cursor between the lanes.
    mux_rr: u8,
}

#[derive(Debug)]
struct Router {
    ins: Vec<InPort>,
    outs: Vec<OutPort>,
    /// Buffered flits per lane across all input VCs — lets the allocator
    /// skip empty lanes (the reply lane is idle most cycles).
    lane_flits: [u32; 2],
    /// Per-output-port candidate bitsets over `(in_port, vc)` slots (bit
    /// `ip * total_vcs + vc`), so each port's arbitration scans only the
    /// slots it could actually serve. A non-empty VC buffer whose worm
    /// holds an output allocation to port `p` sits in `cands[p]` alone;
    /// an unrouted head is routed once (when it reaches the buffer front)
    /// and its slot bit distributed to exactly the ports on its route.
    cands: Vec<Vec<u64>>,
    /// Slots whose front is an unrouted head that has not been routed and
    /// distributed into `cands` yet; drained by `resolve_heads` at the
    /// start of each allocation phase.
    unresolved: Vec<u64>,
    /// Constant mask per lane: bit set iff the slot's VC belongs to that
    /// lane, folding the `lane_vc_range` filter into the word scan.
    lane_mask: [Vec<u64>; 2],
    /// Output wires currently serializing a flit (`Some` entries across
    /// `outs × lanes`); lets the wire phase skip fully idle routers.
    busy_wires: u32,
}

impl Router {
    /// Marks a newly non-empty VC buffer in the bitset matching its
    /// current allocation state (idempotent when already marked): routed
    /// worms go straight to their allocated port's candidate set, fresh
    /// heads queue for route resolution.
    #[inline]
    fn mark_occupied(&mut self, ip: usize, vc: usize, total_vcs: usize) {
        let slot = ip * total_vcs + vc;
        match self.ins[ip].vcs[vc].alloc {
            Some((ap, _)) => set_bit(&mut self.cands[ap as usize], slot),
            None => set_bit(&mut self.unresolved, slot),
        }
    }
}

#[inline]
fn set_bit(bits: &mut [u64], slot: usize) {
    if let Some(w) = bits.get_mut(slot / 64) {
        *w |= 1u64 << (slot % 64);
    }
}

#[inline]
fn clear_bit(bits: &mut [u64], slot: usize) {
    if let Some(w) = bits.get_mut(slot / 64) {
        *w &= !(1u64 << (slot % 64));
    }
}

/// Per-lane injection slot at a node.
#[derive(Debug)]
struct InjSlot {
    worm: WormId,
    next_flit: u16,
    vc: Option<u8>,
}

/// Node-side interface state: injection serializer and ejection assembly.
#[derive(Debug)]
struct NodeIface {
    inj_router: u32,
    inj_port: u8,
    /// Credit mirror for the attached input port's VCs.
    inj_credits: Vec<u16>,
    inj_owner: Vec<Option<WormId>>,
    slots: [Option<InjSlot>; 2],
    /// Flit being serialized onto the injection channel, per lane.
    in_flight: [Option<(Flit, u8, u16)>; 2],
    /// Demand-multiplex fairness cursor between the lanes.
    lane_rr: u8,
    /// Fully assembled packets awaiting [`Fabric::eject`], per lane.
    ready: [VecDeque<Packet>; 2],
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Packets injected, per lane.
    pub injected: [Counter; 2],
    /// Packets fully delivered to ejection queues, per lane.
    pub delivered: [Counter; 2],
    /// Packets dropped at the edge, all causes combined (legacy uniform
    /// lottery plus every fault-plane model).
    pub dropped: Counter,
    /// Drops by the legacy uniform lottery
    /// ([`FabricConfig::drop_prob`](crate::FabricConfig::drop_prob)).
    pub dropped_uniform: Counter,
    /// Fault-plane drops of data (request-lane) packets by uniform lane loss.
    pub dropped_data: Counter,
    /// Fault-plane drops of ack (reply-lane) packets by uniform lane loss.
    pub dropped_ack: Counter,
    /// Fault-plane drops by the Gilbert–Elliott burst chain.
    pub dropped_burst: Counter,
    /// Fault-plane drops by scheduled link-down windows.
    pub dropped_link_down: Counter,
    /// Fault-plane drops by per-destination targeted loss.
    pub dropped_targeted: Counter,
    /// Injection-to-delivery latency of request-lane packets, in cycles.
    pub latency: Stats,
    /// Log-bucketed latency histogram of request-lane packets (quantile
    /// estimation: p50/p90/p99/p999).
    pub latency_hist: LogHistogram,
}

impl FabricStats {
    fn count_fault_drop(&mut self, cause: DropCause) {
        self.dropped.incr();
        match cause {
            DropCause::Data => self.dropped_data.incr(),
            DropCause::Ack => self.dropped_ack.incr(),
            DropCause::Burst => self.dropped_burst.incr(),
            DropCause::LinkDown => self.dropped_link_down.incr(),
            DropCause::Targeted => self.dropped_targeted.incr(),
        }
    }

    /// The drop counter matching a trace [`DropReason`], for counter/event
    /// parity checks.
    pub fn dropped_by_reason(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::Uniform => self.dropped_uniform.get(),
            DropReason::Data => self.dropped_data.get(),
            DropReason::Ack => self.dropped_ack.get(),
            DropReason::Burst => self.dropped_burst.get(),
            DropReason::LinkDown => self.dropped_link_down.get(),
            DropReason::Targeted => self.dropped_targeted.get(),
        }
    }
}

/// The trace-layer mirror of a fault-plane [`DropCause`].
impl From<DropCause> for DropReason {
    fn from(cause: DropCause) -> DropReason {
        match cause {
            DropCause::Data => DropReason::Data,
            DropCause::Ack => DropReason::Ack,
            DropCause::Burst => DropReason::Burst,
            DropCause::LinkDown => DropReason::LinkDown,
            DropCause::Targeted => DropReason::Targeted,
        }
    }
}

/// A simulated interconnection network.
///
/// # Examples
///
/// Injecting a packet and stepping until it pops out the other side:
///
/// ```
/// use nifdy_net::topology::Mesh;
/// use nifdy_net::{Fabric, FabricConfig, Lane, Packet};
/// use nifdy_sim::{NodeId, PacketId};
///
/// let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
/// let (src, dst) = (NodeId::new(0), NodeId::new(15));
/// assert!(fab.can_inject(src, Lane::Request));
/// fab.inject(src, Packet::data(PacketId::new(1), src, dst, 8));
/// let pkt = loop {
///     fab.step();
///     if let Some(p) = fab.eject(dst, Lane::Request) {
///         break p;
///     }
///     assert!(fab.now().as_u64() < 10_000, "packet lost");
/// };
/// assert_eq!(pkt.src, src);
/// ```
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    topo: Box<dyn Topology>,
    routers: Vec<Router>,
    nodes: Vec<NodeIface>,
    arena: Slab<Worm>,
    /// Packets sitting in ejection queues, summed over nodes and lanes —
    /// kept incrementally so [`Fabric::in_network`] is O(1).
    ready_total: usize,
    /// Injection slots currently holding a worm, summed over nodes and
    /// lanes — lets the injection phases skip entirely when no node is
    /// sending.
    inj_active: u32,
    now: Cycle,
    rng: SimRng,
    faults: FaultPlane,
    trace: TraceHandle,
    stats: FabricStats,
    pending_per_dst: Vec<u32>,
    route_buf: Vec<Candidate>,
}

impl Fabric {
    /// Builds a fabric over `topo` with configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FabricConfig::validate`] or provides fewer
    /// virtual channels than the topology requires for deadlock freedom.
    pub fn new(topo: Box<dyn Topology>, cfg: FabricConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fabric config: {e}");
        }
        assert!(
            cfg.vcs_per_lane >= topo.min_vcs_per_lane(),
            "{} requires at least {} VCs per lane",
            topo.name(),
            topo.min_vcs_per_lane()
        );
        let spec = topo.spec();
        let total_vcs = cfg.total_vcs();

        // Build routers with empty ports, then wire feeders from links.
        let mut routers: Vec<Router> = spec
            .routers
            .iter()
            .map(|r| {
                let slots = r.in_ports as usize * total_vcs;
                let words = slots.div_ceil(64);
                let lane_mask = [0usize, 1].map(|lane| {
                    let per = cfg.vcs_per_lane as usize;
                    let range = lane * per..(lane + 1) * per;
                    let mut mask = vec![0u64; words];
                    for s in (0..slots).filter(|s| range.contains(&(s % total_vcs))) {
                        set_bit(&mut mask, s);
                    }
                    mask
                });
                assert!(
                    r.links.len() <= 64,
                    "router out-degree above 64 is unsupported by the \
                     candidate-port bitmask"
                );
                Router {
                    lane_flits: [0, 0],
                    cands: vec![vec![0; words]; r.links.len()],
                    unresolved: vec![0; words],
                    lane_mask,
                    busy_wires: 0,
                    ins: (0..r.in_ports)
                        .map(|_| InPort {
                            vcs: (0..total_vcs).map(|_| VcState::default()).collect(),
                            feeder: Feeder::None,
                        })
                        .collect(),
                    outs: r
                        .links
                        .iter()
                        .map(|&dest| {
                            let cap = match dest {
                                Endpoint::Router { .. } => cfg.vc_buf_flits,
                                Endpoint::Node(_) => cfg.max_packet_flits,
                            };
                            OutPort {
                                dest,
                                credits: vec![cap; total_vcs],
                                owner: vec![None; total_vcs],
                                in_flight: [None, None],
                                rr: 0,
                                mux_rr: 0,
                            }
                        })
                        .collect(),
                }
            })
            .collect();

        for (r, rspec) in spec.routers.iter().enumerate() {
            for (p, &link) in rspec.links.iter().enumerate() {
                if let Endpoint::Router { router, in_port } = link {
                    routers[router as usize].ins[in_port as usize].feeder = Feeder::Router {
                        router: r as u32,
                        port: p as u8,
                    };
                }
            }
        }

        let nodes: Vec<NodeIface> = spec
            .attaches
            .iter()
            .map(|at| {
                routers[at.inj_router as usize].ins[at.inj_port as usize].feeder =
                    Feeder::Node(u32::MAX); // set below
                NodeIface {
                    inj_router: at.inj_router,
                    inj_port: at.inj_port,
                    inj_credits: vec![cfg.vc_buf_flits; total_vcs],
                    inj_owner: vec![None; total_vcs],
                    slots: [None, None],
                    in_flight: [None, None],
                    lane_rr: 0,
                    ready: [VecDeque::new(), VecDeque::new()],
                }
            })
            .collect();
        for (n, at) in spec.attaches.iter().enumerate() {
            routers[at.inj_router as usize].ins[at.inj_port as usize].feeder =
                Feeder::Node(n as u32);
        }

        let num_nodes = topo.num_nodes();
        let seed = cfg.seed;
        let faults = FaultPlane::new(cfg.fault.clone(), seed);
        Fabric {
            cfg,
            topo,
            routers,
            nodes,
            arena: Slab::with_capacity(num_nodes * 2),
            ready_total: 0,
            inj_active: 0,
            now: Cycle::ZERO,
            rng: SimRng::from_seed_stream(seed, 0xFAB),
            faults,
            trace: TraceHandle::off(),
            stats: FabricStats::default(),
            pending_per_dst: vec![0; num_nodes],
            route_buf: Vec::with_capacity(8),
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of attached nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// The topology this fabric instantiates.
    #[inline]
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The configuration this fabric was built with.
    #[inline]
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Aggregate statistics so far.
    #[inline]
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The fault-injection plane (for inspecting burst state or scheduled
    /// outages).
    #[inline]
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.faults
    }

    /// Connects the fabric to a flight recorder: edge drops (with their
    /// cause) and completed deliveries (with their latency) are logged as
    /// [`EventKind::Drop`] / [`EventKind::Deliver`] events on the receiving
    /// node's track.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Number of packets currently inside the fabric (including ejection
    /// queues not yet drained).
    #[inline]
    pub fn in_network(&self) -> usize {
        self.arena.len() + self.ready_total
    }

    /// Packets waiting in `node`'s ejection queues, both lanes — the
    /// "new input pending" signal a driver needs before it may skip
    /// stepping that node's interface.
    #[inline]
    pub fn ready_len(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.index()];
        n.ready[0].len() + n.ready[1].len()
    }

    /// When the fabric next needs stepping. Router arbitration rotates with
    /// the cycle number and time-multiplexed links advance by cycle parity,
    /// so an active fabric (any worm in flight or packet awaiting ejection)
    /// must be stepped every cycle: `Now` whenever [`Self::in_network`] is
    /// non-zero, `Quiescent` otherwise. An empty fabric's step is a pure
    /// clock tick, which [`Self::advance_to`] performs in one jump.
    #[inline]
    pub fn next_event(&self) -> Wakeup {
        if self.in_network() > 0 {
            Wakeup::Now
        } else {
            Wakeup::Quiescent
        }
    }

    /// Jumps the clock to `t` without stepping the cycles in between.
    ///
    /// Only valid while the fabric is quiescent ([`Self::in_network`] is
    /// zero): each skipped step would have been exactly `now += 1`, so the
    /// jump is observationally identical to stepping — same RNG stream
    /// (the drop lottery only draws at deliveries), same arbitration state.
    /// Calls with `t <= now` or on an active fabric are ignored (debug
    /// builds assert).
    pub fn advance_to(&mut self, t: Cycle) {
        debug_assert_eq!(self.in_network(), 0, "cannot skip over an active fabric");
        debug_assert!(t >= self.now, "clock may only move forward");
        if self.in_network() == 0 && t > self.now {
            self.now = t;
        }
    }

    /// Packets currently bound for (or queued at) `dst` — the Figure 5
    /// "pending packets per receiver" gauge.
    #[inline]
    pub fn pending_for(&self, dst: NodeId) -> u32 {
        self.pending_per_dst[dst.index()]
    }

    /// Whether node `node` can hand the fabric a new packet on `lane` this
    /// cycle (its injection slot for that lane is free).
    #[inline]
    pub fn can_inject(&self, node: NodeId, lane: Lane) -> bool {
        self.nodes[node.index()].slots[lane.index()].is_none()
    }

    /// Starts injecting `packet` from `node`.
    ///
    /// The packet's `stamp.injected` is set to the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if the lane's injection slot is busy (check
    /// [`Fabric::can_inject`] first), if the packet is larger than the
    /// configured maximum, or if `node` is not the packet's source.
    pub fn inject(&mut self, node: NodeId, mut packet: Packet) {
        assert_eq!(packet.src, node, "packet injected at a foreign node");
        assert!(
            packet.flits() <= self.cfg.max_packet_flits,
            "packet of {} flits exceeds configured max {}",
            packet.flits(),
            self.cfg.max_packet_flits
        );
        let lane = packet.lane;
        assert!(
            self.can_inject(node, lane),
            "injection slot busy at {node} lane {lane:?}"
        );
        packet.stamp.injected = self.now;
        self.stats.injected[lane.index()].incr();
        self.pending_per_dst[packet.dst.index()] += 1;
        let route = self.topo.init_route(packet.src, packet.dst);
        let flits = packet.flits();
        let worm = self.arena.insert(Worm {
            packet,
            route,
            flits,
        });
        self.nodes[node.index()].slots[lane.index()] = Some(InjSlot {
            worm,
            next_flit: 0,
            vc: None,
        });
        self.inj_active += 1;
    }

    /// Removes and returns the oldest fully delivered packet at `node` on
    /// `lane`, if any.
    pub fn eject(&mut self, node: NodeId, lane: Lane) -> Option<Packet> {
        let pkt = self.nodes[node.index()].ready[lane.index()].pop_front();
        if pkt.is_some() {
            self.ready_total -= 1;
        }
        pkt
    }

    /// Peeks at the oldest delivered packet without removing it.
    pub fn peek_eject(&self, node: NodeId, lane: Lane) -> Option<&Packet> {
        self.nodes[node.index()].ready[lane.index()].front()
    }

    #[inline]
    fn lane_vc_range(&self, lane: Lane) -> std::ops::Range<usize> {
        let per = self.cfg.vcs_per_lane as usize;
        let base = lane.index() * per;
        base..base + per
    }

    /// First slot in `from..limit` holding a flit that output port `p` of
    /// router `r` may consider on `lane`: worms routed to `p` plus resolved
    /// heads whose route includes `p`, intersected with the lane's constant
    /// slot mask.
    #[inline]
    fn next_candidate(
        &self,
        r: usize,
        p: usize,
        lane: Lane,
        from: usize,
        limit: usize,
    ) -> Option<usize> {
        let rt = &self.routers[r];
        let cands = &rt.cands[p];
        let mask = &rt.lane_mask[lane.index()];
        let word =
            |w: usize| cands.get(w).copied().unwrap_or(0) & mask.get(w).copied().unwrap_or(0);
        let mut w = from / 64;
        let mut bits = word(w) & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                return (s < limit).then_some(s);
            }
            w += 1;
            if w * 64 >= limit {
                return None;
            }
            bits = word(w);
        }
    }

    /// Total flits of the worm behind `id`. Defensive zero for a stale key
    /// (a live datapath never produces one).
    #[inline]
    fn worm_flits(&self, id: WormId) -> u16 {
        debug_assert!(self.arena.get(id).is_some(), "stale worm key");
        self.arena.get(id).map_or(0, |w| w.flits)
    }

    /// Flit slots a head must see downstream before advancing, per policy.
    #[inline]
    fn head_credit_need(&self, worm_flits: u16) -> u16 {
        match self.cfg.policy {
            SwitchingPolicy::Wormhole => 1,
            SwitchingPolicy::CutThrough | SwitchingPolicy::StoreAndForward => worm_flits,
        }
    }

    /// Advances the fabric by one cycle.
    pub fn step(&mut self) {
        // With no worm in flight every phase below is a no-op: no flit is
        // buffered, serializing, or awaiting arbitration (ejection queues
        // are drained by the NICs, not by stepping). Skip straight to the
        // clock tick.
        if self.arena.is_empty() {
            self.now += 1;
            return;
        }
        self.progress_wires();
        self.start_router_transmissions();
        self.progress_injection();
        self.now += 1;
    }

    /// Which lane's wire slot advances this cycle on a shared physical
    /// channel. Time-multiplexed links advance strictly by cycle parity;
    /// demand-multiplexed links give the full bandwidth to a lone flit and
    /// alternate fairly when both lanes are busy.
    fn advancing_lane(&self, busy: [bool; 2], mux_rr: u8) -> Option<Lane> {
        let index = if self.cfg.time_mux_lanes {
            let slot = (self.now.as_u64() % 2) as usize;
            busy[slot].then_some(slot)?
        } else {
            match (busy[0], busy[1]) {
                (true, true) => mux_rr as usize,
                (true, false) => 0,
                (false, true) => 1,
                (false, false) => return None,
            }
        };
        // Both arms produce 0 or 1, so the conversion is total.
        Lane::from_index(index).ok()
    }

    /// Phase A: decrement serialization counters; deliver flits whose
    /// transfer completes.
    fn progress_wires(&mut self) {
        let total_vcs = self.cfg.total_vcs();
        for r in 0..self.routers.len() {
            // Every wire idle: advancing_lane would return None for each
            // port, so the whole router is a no-op this cycle.
            if self.routers[r].busy_wires == 0 {
                continue;
            }
            for p in 0..self.routers[r].outs.len() {
                let busy = [
                    self.routers[r].outs[p].in_flight[0].is_some(),
                    self.routers[r].outs[p].in_flight[1].is_some(),
                ];
                let Some(lane) = self.advancing_lane(busy, self.routers[r].outs[p].mux_rr) else {
                    continue;
                };
                if busy[0] && busy[1] {
                    self.routers[r].outs[p].mux_rr ^= 1;
                }
                let Some((flit, dvc, rem)) = self.routers[r].outs[p].in_flight[lane.index()] else {
                    debug_assert!(false, "advancing lane has no flit in flight");
                    continue;
                };
                if rem > 1 {
                    self.routers[r].outs[p].in_flight[lane.index()] = Some((flit, dvc, rem - 1));
                    continue;
                }
                self.routers[r].outs[p].in_flight[lane.index()] = None;
                self.routers[r].busy_wires -= 1;
                let is_tail = flit.idx + 1 == self.worm_flits(flit.worm);
                if is_tail {
                    self.routers[r].outs[p].owner[dvc as usize] = None;
                }
                match self.routers[r].outs[p].dest {
                    Endpoint::Router { router, in_port } => {
                        let target = &mut self.routers[router as usize];
                        target.lane_flits[dvc as usize / self.cfg.vcs_per_lane as usize] += 1;
                        target.mark_occupied(in_port as usize, dvc as usize, total_vcs);
                        target.ins[in_port as usize].vcs[dvc as usize]
                            .buf
                            .push_back((flit, self.now));
                    }
                    Endpoint::Node(node) => {
                        self.deliver_to_node(node as usize, r, p, flit, dvc, is_tail);
                    }
                }
            }
        }
        // Injection channels. A flit can only be in flight on a node's
        // link while that lane's slot holds its worm, so nodes without an
        // active slot (and the whole phase when none is active) are no-ops.
        if self.inj_active == 0 {
            return;
        }
        for n in 0..self.nodes.len() {
            if self.nodes[n].slots[0].is_none() && self.nodes[n].slots[1].is_none() {
                continue;
            }
            let busy = [
                self.nodes[n].in_flight[0].is_some(),
                self.nodes[n].in_flight[1].is_some(),
            ];
            let Some(lane) = self.advancing_lane(busy, self.nodes[n].lane_rr) else {
                continue;
            };
            if busy[0] && busy[1] {
                self.nodes[n].lane_rr ^= 1;
            }
            let Some((flit, dvc, rem)) = self.nodes[n].in_flight[lane.index()] else {
                debug_assert!(false, "advancing lane has no flit in flight");
                continue;
            };
            if rem > 1 {
                self.nodes[n].in_flight[lane.index()] = Some((flit, dvc, rem - 1));
                continue;
            }
            self.nodes[n].in_flight[lane.index()] = None;
            let is_tail = flit.idx + 1 == self.worm_flits(flit.worm);
            if is_tail {
                self.nodes[n].inj_owner[dvc as usize] = None;
                self.nodes[n].slots[lane.index()] = None;
                self.inj_active -= 1;
            }
            let (r, p) = (self.nodes[n].inj_router, self.nodes[n].inj_port);
            let target = &mut self.routers[r as usize];
            target.lane_flits[dvc as usize / self.cfg.vcs_per_lane as usize] += 1;
            target.mark_occupied(p as usize, dvc as usize, total_vcs);
            target.ins[p as usize].vcs[dvc as usize]
                .buf
                .push_back((flit, self.now));
        }
    }

    /// A flit arrives at a node's ejection assembly; on the tail, the packet
    /// is complete and moves to the ready queue (or is dropped by the lossy
    /// lottery).
    fn deliver_to_node(
        &mut self,
        node: usize,
        router: usize,
        port: usize,
        flit: Flit,
        dvc: u8,
        is_tail: bool,
    ) {
        if !is_tail {
            return;
        }
        let Some(worm) = self.arena.remove(flit.worm) else {
            debug_assert!(false, "tail flit of a dead worm");
            return;
        };
        let flits = worm.flits;
        let packet = worm.packet;
        let lane = packet.lane;
        // Return the assembly space to the ejection port's credits.
        self.routers[router].outs[port].credits[dvc as usize] += flits;
        self.pending_per_dst[packet.dst.index()] -= 1;
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            self.stats.dropped.incr();
            self.stats.dropped_uniform.incr();
            trace_event!(
                self.trace,
                self.now,
                packet.dst,
                EventKind::Drop {
                    src: packet.src,
                    dst: packet.dst,
                    ack: lane == Lane::Reply,
                    cause: DropReason::Uniform,
                }
            );
            return;
        }
        if let Some(cause) = self.faults.judge(self.now, &packet) {
            self.stats.count_fault_drop(cause);
            trace_event!(
                self.trace,
                self.now,
                packet.dst,
                EventKind::Drop {
                    src: packet.src,
                    dst: packet.dst,
                    ack: lane == Lane::Reply,
                    cause: cause.into(),
                }
            );
            return;
        }
        self.stats.delivered[lane.index()].incr();
        let latency = self.now.saturating_since(packet.stamp.injected);
        if lane == Lane::Request {
            self.stats.latency.record(latency as f64);
            self.stats.latency_hist.record(latency);
        }
        trace_event!(
            self.trace,
            self.now,
            packet.dst,
            EventKind::Deliver {
                src: packet.src,
                dst: packet.dst,
                ack: lane == Lane::Reply,
                latency,
            }
        );
        // Ready-queue capacity was reserved when the head flit was granted
        // the ejection port (`eject_has_room`), so this never overflows.
        self.nodes[node].ready[lane.index()].push_back(packet);
        self.ready_total += 1;
    }

    /// Whether the node can accept the start of a new packet on this lane:
    /// the ready queue plus packets already mid-assembly (VCs of this lane
    /// owned by a worm at the ejection port `(r, p)`) must stay within
    /// capacity.
    fn eject_has_room(&self, r: usize, p: usize, node: usize, lane: Lane) -> bool {
        let owned = self
            .lane_vc_range(lane)
            .filter(|&vc| self.routers[r].outs[p].owner[vc].is_some())
            .count();
        self.nodes[node].ready[lane.index()].len() + owned < self.cfg.eject_ready_pkts as usize
    }

    /// Phase B: each idle output port picks one eligible flit and starts
    /// serializing it.
    fn start_router_transmissions(&mut self) {
        for r in 0..self.routers.len() {
            if self.routers[r].lane_flits == [0, 0] {
                continue;
            }
            self.resolve_heads(r);
            let num_outs = self.routers[r].outs.len();
            // Rotate starting port so adaptive choices spread over links.
            let start = (self.now.as_u64() as usize + r) % num_outs;
            for k in 0..num_outs {
                let p = (start + k) % num_outs;
                for lane in Lane::ALL {
                    if self.routers[r].lane_flits[lane.index()] > 0
                        && self.routers[r].outs[p].in_flight[lane.index()].is_none()
                        && self.port_has_candidates(r, p, lane)
                    {
                        self.try_start_one(r, p, lane);
                    }
                }
            }
        }
    }

    /// Whether output port `p` has any candidate slot on `lane` — a cheap
    /// word scan that spares the arbitration loop for idle ports.
    #[inline]
    fn port_has_candidates(&self, r: usize, p: usize, lane: Lane) -> bool {
        let rt = &self.routers[r];
        rt.cands[p]
            .iter()
            .zip(&rt.lane_mask[lane.index()])
            .any(|(c, m)| c & m != 0)
    }

    /// Attempts to start one flit of logical network `lane` on output port
    /// `p` of router `r`.
    fn try_start_one(&mut self, r: usize, p: usize, lane: Lane) {
        let num_ins = self.routers[r].ins.len();
        let total_vcs = self.cfg.total_vcs();
        let slots = num_ins * total_vcs;
        let rr = self.routers[r].outs[p].rr as usize;
        // Round-robin over this port's *candidate* slots only — buffered
        // worms already routed to `p` plus resolved heads whose route
        // includes `p`, lane-masked. This visits the same eligible slots
        // in the same order as a full `(rr + k) % slots` sweep (slots it
        // skips would fail the original loop's empty-buffer, lane-range,
        // allocated-elsewhere, or off-route checks), so arbitration
        // outcomes are bit-for-bit unchanged.
        let mut pos = rr;
        let mut limit = slots;
        let mut wrapped = false;
        loop {
            let Some(s) = self.next_candidate(r, p, lane, pos, limit) else {
                if wrapped || rr == 0 {
                    return;
                }
                wrapped = true;
                pos = 0;
                limit = rr;
                continue;
            };
            pos = s + 1;
            let (ip, vc) = (s / total_vcs, s % total_vcs);
            let Some(&(flit, arrived)) = self.routers[r].ins[ip].vcs[vc].buf.front() else {
                debug_assert!(false, "occupancy bit set on an empty VC buffer");
                continue;
            };
            if arrived >= self.now {
                continue; // one-cycle router pipeline
            }
            let alloc = self.routers[r].ins[ip].vcs[vc].alloc;
            let choice = if let Some((ap, avc)) = alloc {
                // Body/tail flit: must continue on its allocated path.
                if ap as usize != p {
                    continue;
                }
                if self.routers[r].outs[p].credits[avc as usize] == 0 {
                    continue;
                }
                Some((avc, false))
            } else {
                debug_assert_eq!(flit.idx, 0, "unrouted non-head flit");
                self.head_allocation(r, p, ip, vc, flit)
                    .map(|dvc| (dvc, true))
            };
            let Some((dvc, is_head)) = choice else {
                continue;
            };
            self.commit_transmission(r, p, ip, vc, flit, dvc, is_head);
            self.routers[r].outs[p].rr = ((s + 1) % slots) as u32;
            return;
        }
    }

    /// Drains router `r`'s unresolved-head queue: each newly fronted
    /// unrouted head is routed once and its slot bit distributed to
    /// exactly the output ports on its route.
    fn resolve_heads(&mut self, r: usize) {
        let total_vcs = self.cfg.total_vcs();
        for w in 0..self.routers[r].unresolved.len() {
            while self.routers[r].unresolved[w] != 0 {
                let b = self.routers[r].unresolved[w].trailing_zeros() as usize;
                let s = w * 64 + b;
                self.resolve_slot(r, s / total_vcs, s % total_vcs);
            }
        }
    }

    /// Routes the unrouted head at the front of `(ip, vc)` and enters its
    /// slot bit into the candidate set of every port on its route. The
    /// mask is cached per VC keyed by worm id — the candidate set is a
    /// pure function of the worm's static route state, so the head's
    /// commit can later retract exactly the bits entered here.
    fn resolve_slot(&mut self, r: usize, ip: usize, vc: usize) {
        let slot = ip * self.cfg.total_vcs() + vc;
        clear_bit(&mut self.routers[r].unresolved, slot);
        let Some(&(flit, _)) = self.routers[r].ins[ip].vcs[vc].buf.front() else {
            return; // buffer drained since the bit was queued
        };
        if self.routers[r].ins[ip].vcs[vc].alloc.is_some() {
            return; // mid-worm; `cands` already tracks the allocated port
        }
        let mask = match self.routers[r].ins[ip].vcs[vc].cand_ports {
            Some((worm, m)) if worm == flit.worm => m,
            _ => {
                let m = self.route_port_mask(r, flit);
                self.routers[r].ins[ip].vcs[vc].cand_ports = Some((flit.worm, m));
                m
            }
        };
        let mut m = mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            set_bit(&mut self.routers[r].cands[q], slot);
        }
    }

    /// Bitmask of output ports the topology offers for `flit`'s worm at
    /// router `r`.
    fn route_port_mask(&mut self, r: usize, flit: Flit) -> u64 {
        let Some(worm) = self.arena.get(flit.worm) else {
            debug_assert!(false, "routing a dead worm");
            return 0;
        };
        let dst = worm.packet.dst;
        let route = worm.route;
        self.route_buf.clear();
        let mut cands = std::mem::take(&mut self.route_buf);
        self.topo.route(r as u32, dst, &route, &mut cands);
        let mut mask = 0u64;
        for cand in &cands {
            mask |= 1u64 << (cand.port % 64);
        }
        self.route_buf = cands;
        mask
    }

    /// Routing + VC allocation for a head flit waiting at `(ip, vc)`;
    /// returns the downstream VC to use on port `p`, if any.
    fn head_allocation(
        &mut self,
        r: usize,
        p: usize,
        ip: usize,
        vc: usize,
        flit: Flit,
    ) -> Option<u8> {
        let worm = self.arena.get(flit.worm)?;
        let lane = worm.packet.lane;
        let flits = worm.flits;
        let dst = worm.packet.dst;
        let route = worm.route;

        // Store-and-forward: the whole packet must sit here first.
        if self.cfg.policy == SwitchingPolicy::StoreAndForward {
            let present = self.routers[r].ins[ip].vcs[vc]
                .buf
                .iter()
                .take_while(|(f, _)| f.worm == flit.worm)
                .count() as u16;
            if present < flits {
                return None;
            }
        }

        self.route_buf.clear();
        let mut cands = std::mem::take(&mut self.route_buf);
        self.topo.route(r as u32, dst, &route, &mut cands);
        let need = self.head_credit_need(flits);
        let mut found = None;
        'outer: for cand in &cands {
            if cand.port as usize != p {
                continue;
            }
            // Node-bound heads additionally need a free ready-queue slot.
            if let Endpoint::Node(node) = self.routers[r].outs[p].dest {
                if !self.eject_has_room(r, p, node as usize, lane) {
                    continue;
                }
            }
            let range = self.lane_vc_range(lane);
            // Candidate VC sub-range, computed without a scratch Vec: this
            // function is on the per-cycle hot path (lint R5 keeps it
            // allocation-free).
            let (lo, hi) = match cand.vc {
                VcSel::Any => (range.start, range.end),
                VcSel::Class(k) => {
                    let idx = range.start + k as usize;
                    debug_assert!(idx < range.end, "VC class beyond lane");
                    (idx, (idx + 1).min(range.end))
                }
            };
            for dvc in lo..hi {
                let out = &self.routers[r].outs[p];
                if out.owner[dvc].is_none() && out.credits[dvc] >= need {
                    found = Some(dvc as u8);
                    break 'outer;
                }
            }
        }
        self.route_buf = cands;
        found
    }

    /// Pops the flit, updates allocation/ownership/credits, and places it on
    /// the wire.
    #[allow(clippy::too_many_arguments)]
    fn commit_transmission(
        &mut self,
        r: usize,
        p: usize,
        ip: usize,
        vc: usize,
        flit: Flit,
        dvc: u8,
        is_head: bool,
    ) {
        let Some((popped, _)) = self.routers[r].ins[ip].vcs[vc].buf.pop_front() else {
            debug_assert!(false, "committed transmission from an empty VC buffer");
            return;
        };
        debug_assert_eq!(popped, flit);
        self.routers[r].lane_flits[vc / self.cfg.vcs_per_lane as usize] -= 1;
        let is_tail = flit.idx + 1 == self.worm_flits(flit.worm);

        if is_head {
            self.routers[r].ins[ip].vcs[vc].alloc = Some((p as u8, dvc));
            self.routers[r].outs[p].owner[dvc as usize] = Some(flit.worm);
            let topo = &self.topo;
            if let Some(worm) = self.arena.get_mut(flit.worm) {
                topo.on_hop(r as u32, p as u8, &mut worm.route);
            }
        }
        if is_tail {
            self.routers[r].ins[ip].vcs[vc].alloc = None;
        }

        // Re-home the slot in the arbitration bitsets: it leaves its old
        // set(s) and, if flits remain buffered, re-enters under the updated
        // allocation state. A committed head was distributed to every port
        // on its cached route mask, so retract exactly those bits (plus the
        // unresolved bit, in case a push re-queued it); a body or tail was
        // visible to port `p` alone.
        let slot = ip * self.cfg.total_vcs() + vc;
        if is_head {
            let mask = match self.routers[r].ins[ip].vcs[vc].cand_ports {
                Some((w, m)) if w == flit.worm => m,
                _ => !0u64, // unknown mask: sweep every port (defensive)
            };
            let nout = self.routers[r].outs.len();
            let mut m = mask;
            while m != 0 {
                let q = m.trailing_zeros() as usize;
                if q >= nout {
                    break;
                }
                m &= m - 1;
                clear_bit(&mut self.routers[r].cands[q], slot);
            }
            clear_bit(&mut self.routers[r].unresolved, slot);
        } else {
            clear_bit(&mut self.routers[r].cands[p], slot);
        }
        if !self.routers[r].ins[ip].vcs[vc].buf.is_empty() {
            self.routers[r].mark_occupied(ip, vc, self.cfg.total_vcs());
            // A tail commit fronts the next worm's unrouted head; resolve
            // it now so output ports later in this cycle's rotation can
            // still claim it (matching the exhaustive-scan behavior).
            if self.routers[r].ins[ip].vcs[vc].alloc.is_none() {
                self.resolve_slot(r, ip, vc);
            }
        }

        // Credit return to whoever feeds this input port.
        match self.routers[r].ins[ip].feeder {
            Feeder::Router { router, port } => {
                self.routers[router as usize].outs[port as usize].credits[vc] += 1;
            }
            Feeder::Node(node) => {
                self.nodes[node as usize].inj_credits[vc] += 1;
            }
            Feeder::None => {}
        }

        self.routers[r].outs[p].credits[dvc as usize] -= 1;
        let lane = dvc as usize / self.cfg.vcs_per_lane as usize;
        debug_assert!(self.routers[r].outs[p].in_flight[lane].is_none());
        self.routers[r].outs[p].in_flight[lane] = Some((flit, dvc, self.cfg.flit_cycles));
        self.routers[r].busy_wires += 1;
    }

    /// Phase C: nodes serialize queued packets onto their injection links.
    /// [`Fabric::try_inject_flit`] is a no-op without a populated slot, so
    /// slot-free nodes (and the whole phase when no slot is active) skip.
    fn progress_injection(&mut self) {
        if self.inj_active == 0 {
            return;
        }
        for n in 0..self.nodes.len() {
            if self.nodes[n].slots[0].is_none() && self.nodes[n].slots[1].is_none() {
                continue;
            }
            for lane in Lane::ALL {
                if self.nodes[n].in_flight[lane.index()].is_none() {
                    let _ = self.try_inject_flit(n, lane);
                }
            }
        }
    }

    /// Attempts to put the next flit of node `n`'s `lane` slot on the wire.
    fn try_inject_flit(&mut self, n: usize, lane: Lane) -> bool {
        let Some(slot) = &self.nodes[n].slots[lane.index()] else {
            return false;
        };
        let worm_id = slot.worm;
        let next = slot.next_flit;
        let Some(worm) = self.arena.get(worm_id) else {
            debug_assert!(false, "injection slot holds a dead worm");
            return false;
        };
        let flits = worm.flits;

        let dvc = match slot.vc {
            Some(v) => v,
            None => {
                // Allocate an input VC at the attached router.
                let need = self.head_credit_need(flits);
                let range = self.lane_vc_range(lane);
                let iface = &self.nodes[n];
                let Some(v) = range
                    .clone()
                    .find(|&v| iface.inj_owner[v].is_none() && iface.inj_credits[v] >= need)
                else {
                    return false;
                };
                v as u8
            }
        };
        if self.nodes[n].inj_credits[dvc as usize] == 0 {
            return false;
        }
        let iface = &mut self.nodes[n];
        let Some(slot) = iface.slots[lane.index()].as_mut() else {
            debug_assert!(false, "slot checked non-empty above");
            return false;
        };
        if slot.vc.is_none() {
            slot.vc = Some(dvc);
            iface.inj_owner[dvc as usize] = Some(worm_id);
        }
        slot.next_flit += 1;
        iface.inj_credits[dvc as usize] -= 1;
        iface.in_flight[lane.index()] = Some((
            Flit {
                worm: worm_id,
                idx: next,
            },
            dvc,
            self.cfg.flit_cycles,
        ));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Butterfly, Cm5FatTree, FatTree, Mesh, Torus};
    use nifdy_sim::PacketId;

    fn drive_one(
        topo: Box<dyn Topology>,
        cfg: FabricConfig,
        src: usize,
        dst: usize,
    ) -> (Packet, u64) {
        let mut fab = Fabric::new(topo, cfg);
        let (s, d) = (NodeId::new(src), NodeId::new(dst));
        fab.inject(s, Packet::data(PacketId::new(1), s, d, 8));
        loop {
            fab.step();
            if let Some(p) = fab.eject(d, Lane::Request) {
                return (p, fab.now().as_u64());
            }
            assert!(fab.now().as_u64() < 100_000, "packet lost in fabric");
        }
    }

    #[test]
    fn mesh_delivers_single_packet() {
        let (p, t) = drive_one(Box::new(Mesh::d2(8, 8)), FabricConfig::default(), 0, 63);
        assert_eq!(p.dst, NodeId::new(63));
        // 14 hops, 4 cycles/flit, 8 flits: latency must be in a sane window.
        assert!(t > 14 && t < 400, "latency {t}");
    }

    #[test]
    fn torus_delivers_across_the_dateline() {
        let cfg = FabricConfig::default().with_vcs_per_lane(2);
        let (p, _) = drive_one(Box::new(Torus::d2(8, 8)), cfg, 7, 0);
        assert_eq!(p.dst, NodeId::new(0));
    }

    #[test]
    fn fat_tree_delivers_with_cut_through() {
        let cfg = FabricConfig::default()
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8);
        let (p, _) = drive_one(Box::new(FatTree::new(64)), cfg, 3, 60);
        assert_eq!(p.src, NodeId::new(3));
    }

    #[test]
    fn butterfly_delivers() {
        let (p, _) = drive_one(
            Box::new(Butterfly::new(64, 1, 0)),
            FabricConfig::default(),
            5,
            5,
        );
        assert_eq!(p.dst, NodeId::new(5));
        let (p, _) = drive_one(
            Box::new(Butterfly::new(64, 2, 3)),
            FabricConfig::default(),
            0,
            63,
        );
        assert_eq!(p.dst, NodeId::new(63));
    }

    #[test]
    fn cm5_time_mux_still_delivers() {
        let cfg = FabricConfig::default().with_time_mux(true);
        let (p, t_mux) = drive_one(Box::new(Cm5FatTree::new(64)), cfg, 0, 63);
        assert_eq!(p.dst, NodeId::new(63));
        let (_, t_plain) = drive_one(
            Box::new(Cm5FatTree::new(64)),
            FabricConfig::default(),
            0,
            63,
        );
        // Strict multiplexing halves effective link bandwidth.
        assert!(t_mux > t_plain, "mux {t_mux} <= plain {t_plain}");
    }

    #[test]
    fn store_and_forward_is_slower_than_wormhole() {
        let wh = FabricConfig::default().with_vc_buf_flits(8);
        let sf = FabricConfig::default()
            .with_policy(SwitchingPolicy::StoreAndForward)
            .with_vc_buf_flits(8);
        let (_, t_wh) = drive_one(Box::new(FatTree::new(64)), wh, 0, 63);
        let (_, t_sf) = drive_one(Box::new(FatTree::new(64)), sf, 0, 63);
        assert!(t_sf > t_wh, "S&F {t_sf} should exceed wormhole {t_wh}");
    }

    #[test]
    fn all_to_one_backpressure_does_not_lose_packets() {
        // Everyone sends to node 0; node 0 never ejects. Backpressure must
        // eventually stall injection (the network fills up), and every
        // injected packet must still be accounted for — blocked, not lost.
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let dst = NodeId::new(0);
        let mut sent = 0u32;
        for _ in 0..20_000 {
            for s in 1..16 {
                let src = NodeId::new(s);
                if fab.can_inject(src, Lane::Request) && sent < 200 {
                    sent += 1;
                    fab.inject(
                        src,
                        Packet::data(PacketId::new(u64::from(sent)), src, dst, 8),
                    );
                }
            }
            fab.step();
        }
        // With one VC per lane and a single blocked receiver, tree
        // saturation gridlocks the mesh almost immediately: each sender gets
        // roughly one worm in before its injection slot never frees. This is
        // exactly the secondary blocking the paper describes.
        assert!(sent >= 15, "every sender should land at least one packet");
        assert!(sent < 200, "backpressure never reached the injection ports");
        // Only the single ready-queue slot may complete; nothing is dropped.
        let completed = fab.stats().delivered[0].get() as u32;
        assert!(completed <= 1, "only the ready-queue head may complete");
        assert_eq!(fab.stats().dropped.get(), 0);
        assert_eq!(fab.pending_for(dst), sent - completed);
        assert_eq!(fab.in_network(), sent as usize);
    }

    #[test]
    fn draining_unblocks_the_backlog() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let dst = NodeId::new(0);
        let mut sent = 0u64;
        let mut got = 0u64;
        for _ in 0..200_000 {
            for s in 1..16 {
                let src = NodeId::new(s);
                if sent < 100 && fab.can_inject(src, Lane::Request) {
                    sent += 1;
                    fab.inject(src, Packet::data(PacketId::new(sent), src, dst, 8));
                }
            }
            fab.step();
            if fab.eject(dst, Lane::Request).is_some() {
                got += 1;
            }
            if got == 100 {
                break;
            }
        }
        assert_eq!(got, 100, "all packets must eventually drain");
        assert_eq!(fab.in_network(), 0);
    }

    #[test]
    fn reply_lane_flows_while_request_lane_is_blocked() {
        // Fill node 0's request-lane ejection, then verify a reply-lane
        // packet still gets through (fetch-deadlock avoidance).
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let dst = NodeId::new(0);
        let src = NodeId::new(5);
        for i in 0..4 {
            let s = NodeId::new(1 + i);
            fab.inject(s, Packet::data(PacketId::new(i as u64), s, dst, 8));
            for _ in 0..500 {
                fab.step();
            }
        }
        let mut ack = Packet::data(PacketId::new(99), src, dst, 2);
        ack.lane = Lane::Reply;
        fab.inject(src, ack);
        for _ in 0..5_000 {
            fab.step();
            if let Some(p) = fab.eject(dst, Lane::Reply) {
                assert_eq!(p.id, PacketId::new(99));
                return;
            }
        }
        panic!("reply-lane packet blocked behind request backlog");
    }

    #[test]
    fn lossy_fabric_drops_some_packets() {
        let cfg = FabricConfig::default().with_drop_prob(0.5).with_seed(1);
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), cfg);
        let (src, dst) = (NodeId::new(0), NodeId::new(15));
        let mut sent = 0u64;
        for _ in 0..100_000 {
            if sent < 100 && fab.can_inject(src, Lane::Request) {
                sent += 1;
                fab.inject(src, Packet::data(PacketId::new(sent), src, dst, 8));
            }
            fab.step();
            let _ = fab.eject(dst, Lane::Request);
            if sent == 100 && fab.in_network() == 0 {
                break;
            }
        }
        let dropped = fab.stats().dropped.get();
        let delivered = fab.stats().delivered[0].get();
        assert_eq!(dropped + delivered, 100);
        assert!(
            dropped > 10 && delivered > 10,
            "drop lottery looks broken: {dropped} dropped"
        );
    }

    #[test]
    fn stats_latency_counts_request_lane_only() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let (src, dst) = (NodeId::new(0), NodeId::new(3));
        fab.inject(src, Packet::data(PacketId::new(1), src, dst, 8));
        for _ in 0..2_000 {
            fab.step();
        }
        assert_eq!(fab.stats().latency.count(), 1);
        assert!(fab.stats().latency.mean() > 0.0);
    }

    #[test]
    #[should_panic(expected = "foreign node")]
    fn inject_checks_source() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let p = Packet::data(PacketId::new(1), NodeId::new(2), NodeId::new(3), 8);
        fab.inject(NodeId::new(0), p);
    }
}
