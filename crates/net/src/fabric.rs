//! The flit-level network fabric.
//!
//! A [`Fabric`] instantiates a [`Topology`](crate::topology::Topology) as a
//! set of routers with per-input-port virtual-channel buffers, credit-based
//! link-level flow control, and per-link flit serialization, stepped one
//! cycle at a time. Network interfaces interact with the fabric only at the
//! edges: [`Fabric::can_inject`]/[`Fabric::inject`] on the way in and
//! [`Fabric::eject`] on the way out. If a node does not drain its ejection
//! queue, flits back up into the routers — exactly the *secondary blocking*
//! the NIFDY protocol is designed to avoid.

use std::collections::VecDeque;

use nifdy_sim::metrics::{Counter, LogHistogram, Stats};
use nifdy_sim::{Cycle, NodeId, SimRng};
use nifdy_trace::{trace_event, DropReason, EventKind, TraceHandle};

use crate::config::{FabricConfig, SwitchingPolicy};
use crate::fault::{DropCause, FaultPlane};
use crate::packet::{Lane, Packet};
use crate::topology::{Candidate, Endpoint, RouteState, Topology, VcSel};

type WormId = u32;

/// A packet in flight, with its routing state.
#[derive(Debug)]
struct Worm {
    packet: Packet,
    route: RouteState,
    flits: u16,
}

/// Arena of in-flight worms; flits reference worms by index.
#[derive(Debug, Default)]
struct WormArena {
    slots: Vec<Option<Worm>>,
    free: Vec<u32>,
    active: usize,
}

impl WormArena {
    fn insert(&mut self, worm: Worm) -> WormId {
        self.active += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(worm);
            id
        } else {
            self.slots.push(Some(worm));
            (self.slots.len() - 1) as WormId
        }
    }

    fn get(&self, id: WormId) -> &Worm {
        self.slots[id as usize].as_ref().expect("live worm")
    }

    fn get_mut(&mut self, id: WormId) -> &mut Worm {
        self.slots[id as usize].as_mut().expect("live worm")
    }

    fn remove(&mut self, id: WormId) -> Worm {
        self.active -= 1;
        self.free.push(id);
        self.slots[id as usize].take().expect("live worm")
    }
}

/// One flit of a worm. `idx == 0` is the head; `idx == flits - 1` the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit {
    worm: WormId,
    idx: u16,
}

/// State of one virtual channel at a router input port.
#[derive(Debug, Default)]
struct VcState {
    /// Buffered flits with their arrival cycles (a flit may be forwarded
    /// only on a later cycle, giving each router a one-cycle pipeline).
    buf: VecDeque<(Flit, Cycle)>,
    /// Output (port, vc) held by the worm currently traversing this VC.
    alloc: Option<(u8, u8)>,
}

/// Who refills credit when this input VC pops a flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feeder {
    Router { router: u32, port: u8 },
    Node(u32),
    None,
}

#[derive(Debug)]
struct InPort {
    vcs: Vec<VcState>,
    feeder: Feeder,
}

#[derive(Debug)]
struct OutPort {
    dest: Endpoint,
    /// Free flit slots per downstream VC.
    credits: Vec<u16>,
    /// Worm currently owning each downstream VC (wormhole allocation).
    owner: Vec<Option<WormId>>,
    /// Flit on the wire per lane: (flit, downstream vc, cycles remaining).
    /// The two logical networks interleave on the physical link: strictly
    /// by cycle parity when time-multiplexed (CM-5), on demand otherwise.
    in_flight: [Option<(Flit, u8, u16)>; 2],
    /// Round-robin cursor over (in_port, vc) pairs.
    rr: u32,
    /// Demand-multiplex fairness cursor between the lanes.
    mux_rr: u8,
}

#[derive(Debug)]
struct Router {
    ins: Vec<InPort>,
    outs: Vec<OutPort>,
    /// Buffered flits per lane across all input VCs — lets the allocator
    /// skip empty lanes (the reply lane is idle most cycles).
    lane_flits: [u32; 2],
}

/// Per-lane injection slot at a node.
#[derive(Debug)]
struct InjSlot {
    worm: WormId,
    next_flit: u16,
    vc: Option<u8>,
}

/// Node-side interface state: injection serializer and ejection assembly.
#[derive(Debug)]
struct NodeIface {
    inj_router: u32,
    inj_port: u8,
    /// Credit mirror for the attached input port's VCs.
    inj_credits: Vec<u16>,
    inj_owner: Vec<Option<WormId>>,
    slots: [Option<InjSlot>; 2],
    /// Flit being serialized onto the injection channel, per lane.
    in_flight: [Option<(Flit, u8, u16)>; 2],
    /// Demand-multiplex fairness cursor between the lanes.
    lane_rr: u8,
    /// Fully assembled packets awaiting [`Fabric::eject`], per lane.
    ready: [VecDeque<Packet>; 2],
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Packets injected, per lane.
    pub injected: [Counter; 2],
    /// Packets fully delivered to ejection queues, per lane.
    pub delivered: [Counter; 2],
    /// Packets dropped at the edge, all causes combined (legacy uniform
    /// lottery plus every fault-plane model).
    pub dropped: Counter,
    /// Drops by the legacy uniform lottery
    /// ([`FabricConfig::drop_prob`](crate::FabricConfig::drop_prob)).
    pub dropped_uniform: Counter,
    /// Fault-plane drops of data (request-lane) packets by uniform lane loss.
    pub dropped_data: Counter,
    /// Fault-plane drops of ack (reply-lane) packets by uniform lane loss.
    pub dropped_ack: Counter,
    /// Fault-plane drops by the Gilbert–Elliott burst chain.
    pub dropped_burst: Counter,
    /// Fault-plane drops by scheduled link-down windows.
    pub dropped_link_down: Counter,
    /// Fault-plane drops by per-destination targeted loss.
    pub dropped_targeted: Counter,
    /// Injection-to-delivery latency of request-lane packets, in cycles.
    pub latency: Stats,
    /// Log-bucketed latency histogram of request-lane packets (quantile
    /// estimation: p50/p90/p99/p999).
    pub latency_hist: LogHistogram,
}

impl FabricStats {
    fn count_fault_drop(&mut self, cause: DropCause) {
        self.dropped.incr();
        match cause {
            DropCause::Data => self.dropped_data.incr(),
            DropCause::Ack => self.dropped_ack.incr(),
            DropCause::Burst => self.dropped_burst.incr(),
            DropCause::LinkDown => self.dropped_link_down.incr(),
            DropCause::Targeted => self.dropped_targeted.incr(),
        }
    }

    /// The drop counter matching a trace [`DropReason`], for counter/event
    /// parity checks.
    pub fn dropped_by_reason(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::Uniform => self.dropped_uniform.get(),
            DropReason::Data => self.dropped_data.get(),
            DropReason::Ack => self.dropped_ack.get(),
            DropReason::Burst => self.dropped_burst.get(),
            DropReason::LinkDown => self.dropped_link_down.get(),
            DropReason::Targeted => self.dropped_targeted.get(),
        }
    }
}

/// The trace-layer mirror of a fault-plane [`DropCause`].
impl From<DropCause> for DropReason {
    fn from(cause: DropCause) -> DropReason {
        match cause {
            DropCause::Data => DropReason::Data,
            DropCause::Ack => DropReason::Ack,
            DropCause::Burst => DropReason::Burst,
            DropCause::LinkDown => DropReason::LinkDown,
            DropCause::Targeted => DropReason::Targeted,
        }
    }
}

/// A simulated interconnection network.
///
/// # Examples
///
/// Injecting a packet and stepping until it pops out the other side:
///
/// ```
/// use nifdy_net::topology::Mesh;
/// use nifdy_net::{Fabric, FabricConfig, Lane, Packet};
/// use nifdy_sim::{NodeId, PacketId};
///
/// let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
/// let (src, dst) = (NodeId::new(0), NodeId::new(15));
/// assert!(fab.can_inject(src, Lane::Request));
/// fab.inject(src, Packet::data(PacketId::new(1), src, dst, 8));
/// let pkt = loop {
///     fab.step();
///     if let Some(p) = fab.eject(dst, Lane::Request) {
///         break p;
///     }
///     assert!(fab.now().as_u64() < 10_000, "packet lost");
/// };
/// assert_eq!(pkt.src, src);
/// ```
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    topo: Box<dyn Topology>,
    routers: Vec<Router>,
    nodes: Vec<NodeIface>,
    arena: WormArena,
    now: Cycle,
    rng: SimRng,
    faults: FaultPlane,
    trace: TraceHandle,
    stats: FabricStats,
    pending_per_dst: Vec<u32>,
    route_buf: Vec<Candidate>,
}

impl Fabric {
    /// Builds a fabric over `topo` with configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FabricConfig::validate`] or provides fewer
    /// virtual channels than the topology requires for deadlock freedom.
    pub fn new(topo: Box<dyn Topology>, cfg: FabricConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fabric config: {e}");
        }
        assert!(
            cfg.vcs_per_lane >= topo.min_vcs_per_lane(),
            "{} requires at least {} VCs per lane",
            topo.name(),
            topo.min_vcs_per_lane()
        );
        let spec = topo.spec();
        let total_vcs = cfg.total_vcs();

        // Build routers with empty ports, then wire feeders from links.
        let mut routers: Vec<Router> = spec
            .routers
            .iter()
            .map(|r| Router {
                lane_flits: [0, 0],
                ins: (0..r.in_ports)
                    .map(|_| InPort {
                        vcs: (0..total_vcs).map(|_| VcState::default()).collect(),
                        feeder: Feeder::None,
                    })
                    .collect(),
                outs: r
                    .links
                    .iter()
                    .map(|&dest| {
                        let cap = match dest {
                            Endpoint::Router { .. } => cfg.vc_buf_flits,
                            Endpoint::Node(_) => cfg.max_packet_flits,
                        };
                        OutPort {
                            dest,
                            credits: vec![cap; total_vcs],
                            owner: vec![None; total_vcs],
                            in_flight: [None, None],
                            rr: 0,
                            mux_rr: 0,
                        }
                    })
                    .collect(),
            })
            .collect();

        for (r, rspec) in spec.routers.iter().enumerate() {
            for (p, &link) in rspec.links.iter().enumerate() {
                if let Endpoint::Router { router, in_port } = link {
                    routers[router as usize].ins[in_port as usize].feeder = Feeder::Router {
                        router: r as u32,
                        port: p as u8,
                    };
                }
            }
        }

        let nodes: Vec<NodeIface> = spec
            .attaches
            .iter()
            .map(|at| {
                routers[at.inj_router as usize].ins[at.inj_port as usize].feeder =
                    Feeder::Node(u32::MAX); // set below
                NodeIface {
                    inj_router: at.inj_router,
                    inj_port: at.inj_port,
                    inj_credits: vec![cfg.vc_buf_flits; total_vcs],
                    inj_owner: vec![None; total_vcs],
                    slots: [None, None],
                    in_flight: [None, None],
                    lane_rr: 0,
                    ready: [VecDeque::new(), VecDeque::new()],
                }
            })
            .collect();
        for (n, at) in spec.attaches.iter().enumerate() {
            routers[at.inj_router as usize].ins[at.inj_port as usize].feeder =
                Feeder::Node(n as u32);
        }

        let num_nodes = topo.num_nodes();
        let seed = cfg.seed;
        let faults = FaultPlane::new(cfg.fault.clone(), seed);
        Fabric {
            cfg,
            topo,
            routers,
            nodes,
            arena: WormArena::default(),
            now: Cycle::ZERO,
            rng: SimRng::from_seed_stream(seed, 0xFAB),
            faults,
            trace: TraceHandle::off(),
            stats: FabricStats::default(),
            pending_per_dst: vec![0; num_nodes],
            route_buf: Vec::with_capacity(8),
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of attached nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// The topology this fabric instantiates.
    #[inline]
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The configuration this fabric was built with.
    #[inline]
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Aggregate statistics so far.
    #[inline]
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The fault-injection plane (for inspecting burst state or scheduled
    /// outages).
    #[inline]
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.faults
    }

    /// Connects the fabric to a flight recorder: edge drops (with their
    /// cause) and completed deliveries (with their latency) are logged as
    /// [`EventKind::Drop`] / [`EventKind::Deliver`] events on the receiving
    /// node's track.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Number of packets currently inside the fabric (including ejection
    /// queues not yet drained).
    #[inline]
    pub fn in_network(&self) -> usize {
        self.arena.active
            + self
                .nodes
                .iter()
                .map(|n| n.ready[0].len() + n.ready[1].len())
                .sum::<usize>()
    }

    /// Packets currently bound for (or queued at) `dst` — the Figure 5
    /// "pending packets per receiver" gauge.
    #[inline]
    pub fn pending_for(&self, dst: NodeId) -> u32 {
        self.pending_per_dst[dst.index()]
    }

    /// Whether node `node` can hand the fabric a new packet on `lane` this
    /// cycle (its injection slot for that lane is free).
    #[inline]
    pub fn can_inject(&self, node: NodeId, lane: Lane) -> bool {
        self.nodes[node.index()].slots[lane.index()].is_none()
    }

    /// Starts injecting `packet` from `node`.
    ///
    /// The packet's `stamp.injected` is set to the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if the lane's injection slot is busy (check
    /// [`Fabric::can_inject`] first), if the packet is larger than the
    /// configured maximum, or if `node` is not the packet's source.
    pub fn inject(&mut self, node: NodeId, mut packet: Packet) {
        assert_eq!(packet.src, node, "packet injected at a foreign node");
        assert!(
            packet.flits() <= self.cfg.max_packet_flits,
            "packet of {} flits exceeds configured max {}",
            packet.flits(),
            self.cfg.max_packet_flits
        );
        let lane = packet.lane;
        assert!(
            self.can_inject(node, lane),
            "injection slot busy at {node} lane {lane:?}"
        );
        packet.stamp.injected = self.now;
        self.stats.injected[lane.index()].incr();
        self.pending_per_dst[packet.dst.index()] += 1;
        let route = self.topo.init_route(packet.src, packet.dst);
        let flits = packet.flits();
        let worm = self.arena.insert(Worm {
            packet,
            route,
            flits,
        });
        self.nodes[node.index()].slots[lane.index()] = Some(InjSlot {
            worm,
            next_flit: 0,
            vc: None,
        });
    }

    /// Removes and returns the oldest fully delivered packet at `node` on
    /// `lane`, if any.
    pub fn eject(&mut self, node: NodeId, lane: Lane) -> Option<Packet> {
        self.nodes[node.index()].ready[lane.index()].pop_front()
    }

    /// Peeks at the oldest delivered packet without removing it.
    pub fn peek_eject(&self, node: NodeId, lane: Lane) -> Option<&Packet> {
        self.nodes[node.index()].ready[lane.index()].front()
    }

    #[inline]
    fn lane_vc_range(&self, lane: Lane) -> std::ops::Range<usize> {
        let per = self.cfg.vcs_per_lane as usize;
        let base = lane.index() * per;
        base..base + per
    }

    /// Flit slots a head must see downstream before advancing, per policy.
    #[inline]
    fn head_credit_need(&self, worm_flits: u16) -> u16 {
        match self.cfg.policy {
            SwitchingPolicy::Wormhole => 1,
            SwitchingPolicy::CutThrough | SwitchingPolicy::StoreAndForward => worm_flits,
        }
    }

    /// Advances the fabric by one cycle.
    pub fn step(&mut self) {
        self.progress_wires();
        self.start_router_transmissions();
        self.progress_injection();
        self.now += 1;
    }

    /// Which lane's wire slot advances this cycle on a shared physical
    /// channel. Time-multiplexed links advance strictly by cycle parity;
    /// demand-multiplexed links give the full bandwidth to a lone flit and
    /// alternate fairly when both lanes are busy.
    fn advancing_lane(&self, busy: [bool; 2], mux_rr: u8) -> Option<Lane> {
        let index = if self.cfg.time_mux_lanes {
            let slot = (self.now.as_u64() % 2) as usize;
            busy[slot].then_some(slot)?
        } else {
            match (busy[0], busy[1]) {
                (true, true) => mux_rr as usize,
                (true, false) => 0,
                (false, true) => 1,
                (false, false) => return None,
            }
        };
        // Both arms produce 0 or 1, so the conversion is total.
        Lane::from_index(index).ok()
    }

    /// Phase A: decrement serialization counters; deliver flits whose
    /// transfer completes.
    fn progress_wires(&mut self) {
        for r in 0..self.routers.len() {
            for p in 0..self.routers[r].outs.len() {
                let busy = [
                    self.routers[r].outs[p].in_flight[0].is_some(),
                    self.routers[r].outs[p].in_flight[1].is_some(),
                ];
                let Some(lane) = self.advancing_lane(busy, self.routers[r].outs[p].mux_rr) else {
                    continue;
                };
                if busy[0] && busy[1] {
                    self.routers[r].outs[p].mux_rr ^= 1;
                }
                let Some((flit, dvc, rem)) = self.routers[r].outs[p].in_flight[lane.index()] else {
                    debug_assert!(false, "advancing lane has no flit in flight");
                    continue;
                };
                if rem > 1 {
                    self.routers[r].outs[p].in_flight[lane.index()] = Some((flit, dvc, rem - 1));
                    continue;
                }
                self.routers[r].outs[p].in_flight[lane.index()] = None;
                let is_tail = flit.idx + 1 == self.arena.get(flit.worm).flits;
                if is_tail {
                    self.routers[r].outs[p].owner[dvc as usize] = None;
                }
                match self.routers[r].outs[p].dest {
                    Endpoint::Router { router, in_port } => {
                        let target = &mut self.routers[router as usize];
                        target.lane_flits[dvc as usize / self.cfg.vcs_per_lane as usize] += 1;
                        target.ins[in_port as usize].vcs[dvc as usize]
                            .buf
                            .push_back((flit, self.now));
                    }
                    Endpoint::Node(node) => {
                        self.deliver_to_node(node as usize, r, p, flit, dvc, is_tail);
                    }
                }
            }
        }
        // Injection channels.
        for n in 0..self.nodes.len() {
            let busy = [
                self.nodes[n].in_flight[0].is_some(),
                self.nodes[n].in_flight[1].is_some(),
            ];
            let Some(lane) = self.advancing_lane(busy, self.nodes[n].lane_rr) else {
                continue;
            };
            if busy[0] && busy[1] {
                self.nodes[n].lane_rr ^= 1;
            }
            let Some((flit, dvc, rem)) = self.nodes[n].in_flight[lane.index()] else {
                debug_assert!(false, "advancing lane has no flit in flight");
                continue;
            };
            if rem > 1 {
                self.nodes[n].in_flight[lane.index()] = Some((flit, dvc, rem - 1));
                continue;
            }
            self.nodes[n].in_flight[lane.index()] = None;
            let is_tail = flit.idx + 1 == self.arena.get(flit.worm).flits;
            if is_tail {
                self.nodes[n].inj_owner[dvc as usize] = None;
                self.nodes[n].slots[lane.index()] = None;
            }
            let (r, p) = (self.nodes[n].inj_router, self.nodes[n].inj_port);
            let target = &mut self.routers[r as usize];
            target.lane_flits[dvc as usize / self.cfg.vcs_per_lane as usize] += 1;
            target.ins[p as usize].vcs[dvc as usize]
                .buf
                .push_back((flit, self.now));
        }
    }

    /// A flit arrives at a node's ejection assembly; on the tail, the packet
    /// is complete and moves to the ready queue (or is dropped by the lossy
    /// lottery).
    fn deliver_to_node(
        &mut self,
        node: usize,
        router: usize,
        port: usize,
        flit: Flit,
        dvc: u8,
        is_tail: bool,
    ) {
        if !is_tail {
            return;
        }
        let worm = self.arena.remove(flit.worm);
        let flits = worm.flits;
        let packet = worm.packet;
        let lane = packet.lane;
        // Return the assembly space to the ejection port's credits.
        self.routers[router].outs[port].credits[dvc as usize] += flits;
        self.pending_per_dst[packet.dst.index()] -= 1;
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            self.stats.dropped.incr();
            self.stats.dropped_uniform.incr();
            trace_event!(
                self.trace,
                self.now,
                packet.dst,
                EventKind::Drop {
                    src: packet.src,
                    dst: packet.dst,
                    ack: lane == Lane::Reply,
                    cause: DropReason::Uniform,
                }
            );
            return;
        }
        if let Some(cause) = self.faults.judge(self.now, &packet) {
            self.stats.count_fault_drop(cause);
            trace_event!(
                self.trace,
                self.now,
                packet.dst,
                EventKind::Drop {
                    src: packet.src,
                    dst: packet.dst,
                    ack: lane == Lane::Reply,
                    cause: cause.into(),
                }
            );
            return;
        }
        self.stats.delivered[lane.index()].incr();
        let latency = self.now.saturating_since(packet.stamp.injected);
        if lane == Lane::Request {
            self.stats.latency.record(latency as f64);
            self.stats.latency_hist.record(latency);
        }
        trace_event!(
            self.trace,
            self.now,
            packet.dst,
            EventKind::Deliver {
                src: packet.src,
                dst: packet.dst,
                ack: lane == Lane::Reply,
                latency,
            }
        );
        // Ready-queue capacity was reserved when the head flit was granted
        // the ejection port (`eject_has_room`), so this never overflows.
        self.nodes[node].ready[lane.index()].push_back(packet);
    }

    /// Whether the node can accept the start of a new packet on this lane:
    /// the ready queue plus packets already mid-assembly (VCs of this lane
    /// owned by a worm at the ejection port `(r, p)`) must stay within
    /// capacity.
    fn eject_has_room(&self, r: usize, p: usize, node: usize, lane: Lane) -> bool {
        let owned = self
            .lane_vc_range(lane)
            .filter(|&vc| self.routers[r].outs[p].owner[vc].is_some())
            .count();
        self.nodes[node].ready[lane.index()].len() + owned < self.cfg.eject_ready_pkts as usize
    }

    /// Phase B: each idle output port picks one eligible flit and starts
    /// serializing it.
    fn start_router_transmissions(&mut self) {
        for r in 0..self.routers.len() {
            if self.routers[r].lane_flits == [0, 0] {
                continue;
            }
            let num_outs = self.routers[r].outs.len();
            // Rotate starting port so adaptive choices spread over links.
            let start = (self.now.as_u64() as usize + r) % num_outs;
            for k in 0..num_outs {
                let p = (start + k) % num_outs;
                for lane in Lane::ALL {
                    if self.routers[r].lane_flits[lane.index()] > 0
                        && self.routers[r].outs[p].in_flight[lane.index()].is_none()
                    {
                        self.try_start_one(r, p, lane);
                    }
                }
            }
        }
    }

    /// Attempts to start one flit of logical network `lane` on output port
    /// `p` of router `r`.
    fn try_start_one(&mut self, r: usize, p: usize, lane: Lane) {
        let num_ins = self.routers[r].ins.len();
        let total_vcs = self.cfg.total_vcs();
        let slots = num_ins * total_vcs;
        let rr = self.routers[r].outs[p].rr as usize;
        let lane_range = self.lane_vc_range(lane);
        for k in 0..slots {
            let s = (rr + k) % slots;
            let (ip, vc) = (s / total_vcs, s % total_vcs);
            if !lane_range.contains(&vc) {
                continue;
            }
            let Some(&(flit, arrived)) = self.routers[r].ins[ip].vcs[vc].buf.front() else {
                continue;
            };
            if arrived >= self.now {
                continue; // one-cycle router pipeline
            }
            let alloc = self.routers[r].ins[ip].vcs[vc].alloc;
            let choice = if let Some((ap, avc)) = alloc {
                // Body/tail flit: must continue on its allocated path.
                if ap as usize != p {
                    continue;
                }
                if self.routers[r].outs[p].credits[avc as usize] == 0 {
                    continue;
                }
                Some((avc, false))
            } else {
                debug_assert_eq!(flit.idx, 0, "unrouted non-head flit");
                self.head_allocation(r, p, ip, vc, flit)
                    .map(|dvc| (dvc, true))
            };
            let Some((dvc, is_head)) = choice else {
                continue;
            };
            self.commit_transmission(r, p, ip, vc, flit, dvc, is_head);
            self.routers[r].outs[p].rr = ((s + 1) % slots) as u32;
            return;
        }
    }

    /// Routing + VC allocation for a head flit waiting at `(ip, vc)`;
    /// returns the downstream VC to use on port `p`, if any.
    fn head_allocation(
        &mut self,
        r: usize,
        p: usize,
        ip: usize,
        vc: usize,
        flit: Flit,
    ) -> Option<u8> {
        let worm = self.arena.get(flit.worm);
        let lane = worm.packet.lane;
        let flits = worm.flits;
        let dst = worm.packet.dst;
        let route = worm.route;

        // Store-and-forward: the whole packet must sit here first.
        if self.cfg.policy == SwitchingPolicy::StoreAndForward {
            let present = self.routers[r].ins[ip].vcs[vc]
                .buf
                .iter()
                .take_while(|(f, _)| f.worm == flit.worm)
                .count() as u16;
            if present < flits {
                return None;
            }
        }

        self.route_buf.clear();
        let mut cands = std::mem::take(&mut self.route_buf);
        self.topo.route(r as u32, dst, &route, &mut cands);
        let need = self.head_credit_need(flits);
        let mut found = None;
        'outer: for cand in &cands {
            if cand.port as usize != p {
                continue;
            }
            // Node-bound heads additionally need a free ready-queue slot.
            if let Endpoint::Node(node) = self.routers[r].outs[p].dest {
                if !self.eject_has_room(r, p, node as usize, lane) {
                    continue;
                }
            }
            let range = self.lane_vc_range(lane);
            let vcs: Vec<usize> = match cand.vc {
                VcSel::Any => range.collect(),
                VcSel::Class(k) => {
                    let idx = range.start + k as usize;
                    debug_assert!(idx < range.end, "VC class beyond lane");
                    vec![idx]
                }
            };
            for dvc in vcs {
                let out = &self.routers[r].outs[p];
                if out.owner[dvc].is_none() && out.credits[dvc] >= need {
                    found = Some(dvc as u8);
                    break 'outer;
                }
            }
        }
        self.route_buf = cands;
        found
    }

    /// Pops the flit, updates allocation/ownership/credits, and places it on
    /// the wire.
    #[allow(clippy::too_many_arguments)]
    fn commit_transmission(
        &mut self,
        r: usize,
        p: usize,
        ip: usize,
        vc: usize,
        flit: Flit,
        dvc: u8,
        is_head: bool,
    ) {
        let Some((popped, _)) = self.routers[r].ins[ip].vcs[vc].buf.pop_front() else {
            debug_assert!(false, "committed transmission from an empty VC buffer");
            return;
        };
        debug_assert_eq!(popped, flit);
        self.routers[r].lane_flits[vc / self.cfg.vcs_per_lane as usize] -= 1;
        let is_tail = flit.idx + 1 == self.arena.get(flit.worm).flits;

        if is_head {
            self.routers[r].ins[ip].vcs[vc].alloc = Some((p as u8, dvc));
            self.routers[r].outs[p].owner[dvc as usize] = Some(flit.worm);
            let route = &mut self.arena.get_mut(flit.worm).route;
            let topo = &self.topo;
            topo.on_hop(r as u32, p as u8, route);
        }
        if is_tail {
            self.routers[r].ins[ip].vcs[vc].alloc = None;
        }

        // Credit return to whoever feeds this input port.
        match self.routers[r].ins[ip].feeder {
            Feeder::Router { router, port } => {
                self.routers[router as usize].outs[port as usize].credits[vc] += 1;
            }
            Feeder::Node(node) => {
                self.nodes[node as usize].inj_credits[vc] += 1;
            }
            Feeder::None => {}
        }

        self.routers[r].outs[p].credits[dvc as usize] -= 1;
        let lane = dvc as usize / self.cfg.vcs_per_lane as usize;
        self.routers[r].outs[p].in_flight[lane] = Some((flit, dvc, self.cfg.flit_cycles));
    }

    /// Phase C: nodes serialize queued packets onto their injection links.
    fn progress_injection(&mut self) {
        for n in 0..self.nodes.len() {
            for lane in Lane::ALL {
                if self.nodes[n].in_flight[lane.index()].is_none() {
                    let _ = self.try_inject_flit(n, lane);
                }
            }
        }
    }

    /// Attempts to put the next flit of node `n`'s `lane` slot on the wire.
    fn try_inject_flit(&mut self, n: usize, lane: Lane) -> bool {
        let Some(slot) = &self.nodes[n].slots[lane.index()] else {
            return false;
        };
        let worm_id = slot.worm;
        let next = slot.next_flit;
        let worm = self.arena.get(worm_id);
        let flits = worm.flits;

        let dvc = match slot.vc {
            Some(v) => v,
            None => {
                // Allocate an input VC at the attached router.
                let need = self.head_credit_need(flits);
                let range = self.lane_vc_range(lane);
                let iface = &self.nodes[n];
                let Some(v) = range
                    .clone()
                    .find(|&v| iface.inj_owner[v].is_none() && iface.inj_credits[v] >= need)
                else {
                    return false;
                };
                v as u8
            }
        };
        if self.nodes[n].inj_credits[dvc as usize] == 0 {
            return false;
        }
        let iface = &mut self.nodes[n];
        let Some(slot) = iface.slots[lane.index()].as_mut() else {
            debug_assert!(false, "slot checked non-empty above");
            return false;
        };
        if slot.vc.is_none() {
            slot.vc = Some(dvc);
            iface.inj_owner[dvc as usize] = Some(worm_id);
        }
        slot.next_flit += 1;
        iface.inj_credits[dvc as usize] -= 1;
        iface.in_flight[lane.index()] = Some((
            Flit {
                worm: worm_id,
                idx: next,
            },
            dvc,
            self.cfg.flit_cycles,
        ));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Butterfly, Cm5FatTree, FatTree, Mesh, Torus};
    use nifdy_sim::PacketId;

    fn drive_one(
        topo: Box<dyn Topology>,
        cfg: FabricConfig,
        src: usize,
        dst: usize,
    ) -> (Packet, u64) {
        let mut fab = Fabric::new(topo, cfg);
        let (s, d) = (NodeId::new(src), NodeId::new(dst));
        fab.inject(s, Packet::data(PacketId::new(1), s, d, 8));
        loop {
            fab.step();
            if let Some(p) = fab.eject(d, Lane::Request) {
                return (p, fab.now().as_u64());
            }
            assert!(fab.now().as_u64() < 100_000, "packet lost in fabric");
        }
    }

    #[test]
    fn mesh_delivers_single_packet() {
        let (p, t) = drive_one(Box::new(Mesh::d2(8, 8)), FabricConfig::default(), 0, 63);
        assert_eq!(p.dst, NodeId::new(63));
        // 14 hops, 4 cycles/flit, 8 flits: latency must be in a sane window.
        assert!(t > 14 && t < 400, "latency {t}");
    }

    #[test]
    fn torus_delivers_across_the_dateline() {
        let cfg = FabricConfig::default().with_vcs_per_lane(2);
        let (p, _) = drive_one(Box::new(Torus::d2(8, 8)), cfg, 7, 0);
        assert_eq!(p.dst, NodeId::new(0));
    }

    #[test]
    fn fat_tree_delivers_with_cut_through() {
        let cfg = FabricConfig::default()
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8);
        let (p, _) = drive_one(Box::new(FatTree::new(64)), cfg, 3, 60);
        assert_eq!(p.src, NodeId::new(3));
    }

    #[test]
    fn butterfly_delivers() {
        let (p, _) = drive_one(
            Box::new(Butterfly::new(64, 1, 0)),
            FabricConfig::default(),
            5,
            5,
        );
        assert_eq!(p.dst, NodeId::new(5));
        let (p, _) = drive_one(
            Box::new(Butterfly::new(64, 2, 3)),
            FabricConfig::default(),
            0,
            63,
        );
        assert_eq!(p.dst, NodeId::new(63));
    }

    #[test]
    fn cm5_time_mux_still_delivers() {
        let cfg = FabricConfig::default().with_time_mux(true);
        let (p, t_mux) = drive_one(Box::new(Cm5FatTree::new(64)), cfg, 0, 63);
        assert_eq!(p.dst, NodeId::new(63));
        let (_, t_plain) = drive_one(
            Box::new(Cm5FatTree::new(64)),
            FabricConfig::default(),
            0,
            63,
        );
        // Strict multiplexing halves effective link bandwidth.
        assert!(t_mux > t_plain, "mux {t_mux} <= plain {t_plain}");
    }

    #[test]
    fn store_and_forward_is_slower_than_wormhole() {
        let wh = FabricConfig::default().with_vc_buf_flits(8);
        let sf = FabricConfig::default()
            .with_policy(SwitchingPolicy::StoreAndForward)
            .with_vc_buf_flits(8);
        let (_, t_wh) = drive_one(Box::new(FatTree::new(64)), wh, 0, 63);
        let (_, t_sf) = drive_one(Box::new(FatTree::new(64)), sf, 0, 63);
        assert!(t_sf > t_wh, "S&F {t_sf} should exceed wormhole {t_wh}");
    }

    #[test]
    fn all_to_one_backpressure_does_not_lose_packets() {
        // Everyone sends to node 0; node 0 never ejects. Backpressure must
        // eventually stall injection (the network fills up), and every
        // injected packet must still be accounted for — blocked, not lost.
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let dst = NodeId::new(0);
        let mut sent = 0u32;
        for _ in 0..20_000 {
            for s in 1..16 {
                let src = NodeId::new(s);
                if fab.can_inject(src, Lane::Request) && sent < 200 {
                    sent += 1;
                    fab.inject(
                        src,
                        Packet::data(PacketId::new(u64::from(sent)), src, dst, 8),
                    );
                }
            }
            fab.step();
        }
        // With one VC per lane and a single blocked receiver, tree
        // saturation gridlocks the mesh almost immediately: each sender gets
        // roughly one worm in before its injection slot never frees. This is
        // exactly the secondary blocking the paper describes.
        assert!(sent >= 15, "every sender should land at least one packet");
        assert!(sent < 200, "backpressure never reached the injection ports");
        // Only the single ready-queue slot may complete; nothing is dropped.
        let completed = fab.stats().delivered[0].get() as u32;
        assert!(completed <= 1, "only the ready-queue head may complete");
        assert_eq!(fab.stats().dropped.get(), 0);
        assert_eq!(fab.pending_for(dst), sent - completed);
        assert_eq!(fab.in_network(), sent as usize);
    }

    #[test]
    fn draining_unblocks_the_backlog() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let dst = NodeId::new(0);
        let mut sent = 0u64;
        let mut got = 0u64;
        for _ in 0..200_000 {
            for s in 1..16 {
                let src = NodeId::new(s);
                if sent < 100 && fab.can_inject(src, Lane::Request) {
                    sent += 1;
                    fab.inject(src, Packet::data(PacketId::new(sent), src, dst, 8));
                }
            }
            fab.step();
            if fab.eject(dst, Lane::Request).is_some() {
                got += 1;
            }
            if got == 100 {
                break;
            }
        }
        assert_eq!(got, 100, "all packets must eventually drain");
        assert_eq!(fab.in_network(), 0);
    }

    #[test]
    fn reply_lane_flows_while_request_lane_is_blocked() {
        // Fill node 0's request-lane ejection, then verify a reply-lane
        // packet still gets through (fetch-deadlock avoidance).
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let dst = NodeId::new(0);
        let src = NodeId::new(5);
        for i in 0..4 {
            let s = NodeId::new(1 + i);
            fab.inject(s, Packet::data(PacketId::new(i as u64), s, dst, 8));
            for _ in 0..500 {
                fab.step();
            }
        }
        let mut ack = Packet::data(PacketId::new(99), src, dst, 2);
        ack.lane = Lane::Reply;
        fab.inject(src, ack);
        for _ in 0..5_000 {
            fab.step();
            if let Some(p) = fab.eject(dst, Lane::Reply) {
                assert_eq!(p.id, PacketId::new(99));
                return;
            }
        }
        panic!("reply-lane packet blocked behind request backlog");
    }

    #[test]
    fn lossy_fabric_drops_some_packets() {
        let cfg = FabricConfig::default().with_drop_prob(0.5).with_seed(1);
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), cfg);
        let (src, dst) = (NodeId::new(0), NodeId::new(15));
        let mut sent = 0u64;
        for _ in 0..100_000 {
            if sent < 100 && fab.can_inject(src, Lane::Request) {
                sent += 1;
                fab.inject(src, Packet::data(PacketId::new(sent), src, dst, 8));
            }
            fab.step();
            let _ = fab.eject(dst, Lane::Request);
            if sent == 100 && fab.in_network() == 0 {
                break;
            }
        }
        let dropped = fab.stats().dropped.get();
        let delivered = fab.stats().delivered[0].get();
        assert_eq!(dropped + delivered, 100);
        assert!(
            dropped > 10 && delivered > 10,
            "drop lottery looks broken: {dropped} dropped"
        );
    }

    #[test]
    fn stats_latency_counts_request_lane_only() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let (src, dst) = (NodeId::new(0), NodeId::new(3));
        fab.inject(src, Packet::data(PacketId::new(1), src, dst, 8));
        for _ in 0..2_000 {
            fab.step();
        }
        assert_eq!(fab.stats().latency.count(), 1);
        assert!(fab.stats().latency.mean() > 0.0);
    }

    #[test]
    #[should_panic(expected = "foreign node")]
    fn inject_checks_source() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let p = Packet::data(PacketId::new(1), NodeId::new(2), NodeId::new(3), 8);
        fab.inject(NodeId::new(0), p);
    }
}
