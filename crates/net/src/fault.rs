//! The fault-injection plane: deterministic, seeded packet-loss models.
//!
//! The base fabric offers a single uniform edge drop probability
//! ([`FabricConfig::drop_prob`](crate::FabricConfig::drop_prob)), which is
//! enough to demonstrate the paper's §6.2 retransmission extension but far
//! from the loss behavior of real deployments. The [`FaultPlane`] adds the
//! scenarios production networks actually exhibit:
//!
//! * **Bursty loss** via a two-state Gilbert–Elliott chain
//!   ([`GilbertElliott`]): long stretches of near-lossless operation
//!   punctuated by bursts in which most packets die.
//! * **Asymmetric lane loss**: independent drop probabilities for
//!   data (request-lane) and ack (reply-lane) packets, because ack-path
//!   loss stresses retransmission logic very differently from data loss.
//! * **Scheduled link outages** ([`LinkWindow`]): a named edge link goes
//!   down at one cycle and comes back at another (or never), turning loss
//!   from a lottery into a hard fault the protocol must survive.
//! * **Targeted destinations** ([`TargetedDrop`]): elevated loss towards
//!   specific nodes, modeling a flaky cable or a failing switch port.
//!
//! Every cause is counted separately in
//! [`FabricStats`](crate::FabricStats), and all randomness comes from a
//! dedicated [`SimRng`] stream, so enabling the fault plane never perturbs
//! the fabric's routing or legacy drop lottery for a given seed.

use nifdy_sim::{Cycle, NodeId, SimRng};

use crate::packet::{Lane, Packet};

/// Stream id for the fault plane's private generator (decorrelated from the
/// fabric's routing/drop stream `0xFAB`).
const FAULT_STREAM: u64 = 0xFA17;

/// Two-state Gilbert–Elliott burst-loss model.
///
/// The chain sits in a *good* state with loss probability
/// [`loss_good`](GilbertElliott::loss_good) and occasionally enters a *bad*
/// (burst) state with loss probability
/// [`loss_bad`](GilbertElliott::loss_bad); transitions are sampled once per
/// delivered packet. Steady-state loss is
/// `(p_enter * loss_bad + p_exit * loss_good) / (p_enter + p_exit)`.
///
/// # Examples
///
/// ```
/// use nifdy_net::GilbertElliott;
///
/// let ge = GilbertElliott::with_mean_loss(0.10);
/// assert!((ge.steady_state_loss() - 0.10).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of moving good → bad, per judged packet.
    pub p_enter: f64,
    /// Probability of moving bad → good, per judged packet.
    pub p_exit: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad (burst) state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A bursty channel whose long-run loss rate equals `mean` (clamped to
    /// `[0, 0.45]`): bursts of ~20 packets losing 90% of traffic, separated
    /// by clean stretches sized to hit the requested average.
    pub fn with_mean_loss(mean: f64) -> Self {
        let mean = mean.clamp(0.0, 0.45);
        let loss_bad = 0.9;
        let loss_good = 0.0;
        let p_exit = 0.05; // mean burst length = 20 packets
                           // Solve steady-state loss = mean for p_enter:
                           //   mean = p_enter * loss_bad / (p_enter + p_exit)
        let p_enter = if mean <= 0.0 {
            0.0
        } else {
            mean * p_exit / (loss_bad - mean)
        };
        GilbertElliott {
            p_enter,
            p_exit,
            loss_good,
            loss_bad,
        }
    }

    /// The long-run fraction of judged packets this chain drops.
    pub fn steady_state_loss(&self) -> f64 {
        let denom = self.p_enter + self.p_exit;
        if denom <= 0.0 {
            return self.loss_good;
        }
        (self.p_enter * self.loss_bad + self.p_exit * self.loss_good) / denom
    }

    /// Validates that all four probabilities are within `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_enter", self.p_enter),
            ("p_exit", self.p_exit),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("gilbert-elliott {name} must be within [0, 1]"));
            }
        }
        Ok(())
    }
}

/// A scheduled outage of one node's edge (ejection) link.
///
/// While `down_from <= now < up_at`, every packet completing delivery over
/// the named link — i.e. every packet destined to `node` — is dropped.
/// `up_at == u64::MAX` models a link that never comes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkWindow {
    /// Human-readable link name, used in diagnostics (e.g. `"edge-12"`).
    pub name: String,
    /// The node whose edge link this window disables.
    pub node: NodeId,
    /// First cycle of the outage.
    pub down_from: u64,
    /// First cycle after the outage (exclusive); `u64::MAX` = permanent.
    pub up_at: u64,
}

impl LinkWindow {
    /// An outage of `node`'s edge link over `[down_from, up_at)`, named
    /// `edge-<node>`.
    pub fn edge(node: NodeId, down_from: u64, up_at: u64) -> Self {
        LinkWindow {
            name: format!("edge-{}", node.index()),
            node,
            down_from,
            up_at,
        }
    }

    /// Whether the link is down at `now`.
    #[inline]
    pub fn is_down_at(&self, now: u64) -> bool {
        self.down_from <= now && now < self.up_at
    }
}

/// Elevated loss toward one destination node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetedDrop {
    /// Destination whose inbound packets are additionally at risk.
    pub dst: NodeId,
    /// Extra drop probability applied to packets bound for `dst`.
    pub prob: f64,
}

/// Configuration of the [`FaultPlane`], carried inside
/// [`FabricConfig`](crate::FabricConfig).
///
/// The default has every model disabled; the plane then never draws from
/// its generator, keeping legacy seeded runs bit-identical.
///
/// # Examples
///
/// ```
/// use nifdy_net::{FaultConfig, GilbertElliott};
///
/// let faults = FaultConfig::default()
///     .with_burst(GilbertElliott::with_mean_loss(0.1))
///     .with_ack_drop_prob(0.02);
/// assert!(faults.validate().is_ok());
/// assert!(faults.is_active());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// Uniform drop probability for data (request-lane) packets.
    pub data_drop_prob: f64,
    /// Uniform drop probability for ack/reply (reply-lane) packets.
    pub ack_drop_prob: f64,
    /// Optional Gilbert–Elliott burst-loss chain (applies to both lanes).
    pub burst: Option<GilbertElliott>,
    /// Scheduled link outages.
    pub link_windows: Vec<LinkWindow>,
    /// Per-destination targeted drops.
    pub targets: Vec<TargetedDrop>,
}

impl FaultConfig {
    /// Sets the uniform data-lane drop probability.
    pub fn with_data_drop_prob(mut self, p: f64) -> Self {
        self.data_drop_prob = p;
        self
    }

    /// Sets the uniform ack-lane drop probability.
    pub fn with_ack_drop_prob(mut self, p: f64) -> Self {
        self.ack_drop_prob = p;
        self
    }

    /// Enables Gilbert–Elliott bursty loss.
    pub fn with_burst(mut self, ge: GilbertElliott) -> Self {
        self.burst = Some(ge);
        self
    }

    /// Adds a scheduled link outage.
    pub fn with_link_window(mut self, window: LinkWindow) -> Self {
        self.link_windows.push(window);
        self
    }

    /// Adds a per-destination targeted drop.
    pub fn with_target(mut self, dst: NodeId, prob: f64) -> Self {
        self.targets.push(TargetedDrop { dst, prob });
        self
    }

    /// Whether any fault model is enabled.
    pub fn is_active(&self) -> bool {
        self.data_drop_prob > 0.0
            || self.ack_drop_prob > 0.0
            || self.burst.is_some()
            || !self.link_windows.is_empty()
            || !self.targets.is_empty()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (probability
    /// out of `[0, 1]`, or an empty link window).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.data_drop_prob) {
            return Err("data_drop_prob must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.ack_drop_prob) {
            return Err("ack_drop_prob must be within [0, 1]".into());
        }
        if let Some(ge) = &self.burst {
            ge.validate()?;
        }
        for w in &self.link_windows {
            if w.down_from >= w.up_at {
                return Err(format!(
                    "link window {:?} is empty: down_from {} >= up_at {}",
                    w.name, w.down_from, w.up_at
                ));
            }
        }
        for t in &self.targets {
            if !(0.0..=1.0).contains(&t.prob) {
                return Err(format!("targeted drop for {} must be within [0, 1]", t.dst));
            }
        }
        Ok(())
    }
}

/// Why the fault plane dropped a packet; each cause has its own counter in
/// [`FabricStats`](crate::FabricStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Uniform data-lane loss ([`FaultConfig::data_drop_prob`]).
    Data,
    /// Uniform ack-lane loss ([`FaultConfig::ack_drop_prob`]).
    Ack,
    /// Gilbert–Elliott burst loss.
    Burst,
    /// A scheduled link outage.
    LinkDown,
    /// A per-destination targeted drop.
    Targeted,
}

/// Runtime state of the fault-injection plane.
///
/// Owned by the [`Fabric`](crate::Fabric); judged once per fully delivered
/// packet at the receiving edge. Deterministic for a given
/// `(seed, FaultConfig)` pair.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: SimRng,
    /// Gilbert–Elliott chain state: `true` while in the bad (burst) state.
    in_burst: bool,
    active: bool,
}

impl FaultPlane {
    /// Builds the plane for `cfg`, drawing randomness from the plane's own
    /// dedicated stream of `seed` (so enabling faults never perturbs the
    /// fabric's legacy drop lottery).
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        let active = cfg.is_active();
        FaultPlane {
            cfg,
            rng: SimRng::from_seed_stream(seed, FAULT_STREAM),
            in_burst: false,
            active,
        }
    }

    /// Whether any fault model is enabled.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the Gilbert–Elliott chain is currently in its burst state.
    #[inline]
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Whether any configured link window covers `dst` at `now`.
    pub fn link_is_down(&self, dst: NodeId, now: Cycle) -> bool {
        self.cfg
            .link_windows
            .iter()
            .any(|w| w.node == dst && w.is_down_at(now.as_u64()))
    }

    /// Judges one packet completing delivery at `now`; returns the cause if
    /// it must be dropped.
    ///
    /// Deterministic rules (link windows) are checked before probabilistic
    /// ones, and the Gilbert–Elliott chain advances exactly once per judged
    /// packet regardless of the other models' outcomes, so the burst
    /// pattern is a pure function of the judged-packet sequence.
    pub fn judge(&mut self, now: Cycle, packet: &Packet) -> Option<DropCause> {
        if !self.active {
            return None;
        }
        // Advance the burst chain first so its trajectory is independent of
        // the deterministic rules firing.
        let burst_says_drop = if let Some(ge) = self.cfg.burst {
            let loss = if self.in_burst {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            let drop = loss > 0.0 && self.rng.gen_bool(loss);
            let flip = if self.in_burst { ge.p_exit } else { ge.p_enter };
            if flip > 0.0 && self.rng.gen_bool(flip) {
                self.in_burst = !self.in_burst;
            }
            drop
        } else {
            false
        };

        if self.link_is_down(packet.dst, now) {
            return Some(DropCause::LinkDown);
        }
        if let Some(t) = self.cfg.targets.iter().find(|t| t.dst == packet.dst) {
            if t.prob > 0.0 && self.rng.gen_bool(t.prob) {
                return Some(DropCause::Targeted);
            }
        }
        if burst_says_drop {
            return Some(DropCause::Burst);
        }
        let (cause, p) = match packet.lane {
            Lane::Request => (DropCause::Data, self.cfg.data_drop_prob),
            Lane::Reply => (DropCause::Ack, self.cfg.ack_drop_prob),
        };
        if p > 0.0 && self.rng.gen_bool(p) {
            return Some(cause);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_sim::PacketId;

    fn pkt(dst: usize, lane: Lane) -> Packet {
        let mut p = Packet::data(PacketId::new(1), NodeId::new(0), NodeId::new(dst), 8);
        p.lane = lane;
        p
    }

    #[test]
    fn inactive_plane_never_drops_or_draws() {
        let mut plane = FaultPlane::new(FaultConfig::default(), 7);
        assert!(!plane.is_active());
        for i in 0..1_000 {
            assert_eq!(plane.judge(Cycle::new(i), &pkt(3, Lane::Request)), None);
        }
    }

    #[test]
    fn ge_mean_loss_solves_steady_state() {
        for mean in [0.01, 0.05, 0.1, 0.25, 0.4] {
            let ge = GilbertElliott::with_mean_loss(mean);
            assert!((ge.steady_state_loss() - mean).abs() < 1e-9, "mean {mean}");
            assert!(ge.validate().is_ok());
        }
    }

    #[test]
    fn burst_loss_is_bursty_and_near_the_mean() {
        let cfg = FaultConfig::default().with_burst(GilbertElliott::with_mean_loss(0.1));
        let mut plane = FaultPlane::new(cfg, 42);
        let n = 200_000u64;
        let mut drops = 0u64;
        let mut runs = 0u64; // consecutive-drop pairs; bursty => many
        let mut prev = false;
        for i in 0..n {
            let dropped = plane.judge(Cycle::new(i), &pkt(5, Lane::Request)).is_some();
            drops += u64::from(dropped);
            runs += u64::from(dropped && prev);
            prev = dropped;
        }
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "loss rate {rate}");
        // Under independent 10% loss, P(drop|drop) = 0.1; bursts push the
        // conditional far higher.
        let cond = runs as f64 / drops as f64;
        assert!(cond > 0.5, "loss not bursty: P(drop|drop) = {cond}");
    }

    #[test]
    fn lanes_have_independent_probabilities() {
        let cfg = FaultConfig::default().with_ack_drop_prob(0.5);
        let mut plane = FaultPlane::new(cfg, 3);
        let mut ack_drops = 0;
        for i in 0..2_000 {
            assert_eq!(plane.judge(Cycle::new(i), &pkt(2, Lane::Request)), None);
            if plane.judge(Cycle::new(i), &pkt(2, Lane::Reply)).is_some() {
                ack_drops += 1;
            }
        }
        assert!(
            (800..1_200).contains(&ack_drops),
            "ack drops {ack_drops}/2000"
        );
    }

    #[test]
    fn link_window_is_deterministic_and_scheduled() {
        let cfg =
            FaultConfig::default().with_link_window(LinkWindow::edge(NodeId::new(4), 100, 200));
        let mut plane = FaultPlane::new(cfg, 0);
        assert_eq!(plane.judge(Cycle::new(99), &pkt(4, Lane::Request)), None);
        assert_eq!(
            plane.judge(Cycle::new(100), &pkt(4, Lane::Request)),
            Some(DropCause::LinkDown)
        );
        assert_eq!(
            plane.judge(Cycle::new(199), &pkt(4, Lane::Reply)),
            Some(DropCause::LinkDown)
        );
        assert_eq!(plane.judge(Cycle::new(200), &pkt(4, Lane::Request)), None);
        // Other destinations are unaffected.
        assert_eq!(plane.judge(Cycle::new(150), &pkt(5, Lane::Request)), None);
    }

    #[test]
    fn targeted_drops_hit_only_their_destination() {
        let cfg = FaultConfig::default().with_target(NodeId::new(9), 1.0);
        let mut plane = FaultPlane::new(cfg, 1);
        assert_eq!(
            plane.judge(Cycle::new(0), &pkt(9, Lane::Request)),
            Some(DropCause::Targeted)
        );
        assert_eq!(plane.judge(Cycle::new(0), &pkt(8, Lane::Request)), None);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(FaultConfig::default()
            .with_data_drop_prob(1.5)
            .validate()
            .is_err());
        assert!(FaultConfig::default()
            .with_ack_drop_prob(-0.1)
            .validate()
            .is_err());
        let mut bad_ge = GilbertElliott::with_mean_loss(0.1);
        bad_ge.loss_bad = 2.0;
        assert!(FaultConfig::default()
            .with_burst(bad_ge)
            .validate()
            .is_err());
        let empty = LinkWindow::edge(NodeId::new(0), 50, 50);
        assert!(FaultConfig::default()
            .with_link_window(empty)
            .validate()
            .is_err());
        assert!(FaultConfig::default()
            .with_target(NodeId::new(0), 7.0)
            .validate()
            .is_err());
    }

    #[test]
    fn same_seed_same_verdicts() {
        let cfg = FaultConfig::default()
            .with_burst(GilbertElliott::with_mean_loss(0.2))
            .with_data_drop_prob(0.05);
        let mut a = FaultPlane::new(cfg.clone(), 11);
        let mut b = FaultPlane::new(cfg, 11);
        for i in 0..5_000 {
            let p = pkt((i % 16) as usize, Lane::Request);
            assert_eq!(a.judge(Cycle::new(i), &p), b.judge(Cycle::new(i), &p));
        }
    }
}
