//! Fabric-wide configuration knobs.

use crate::fault::FaultConfig;

/// How routers forward packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwitchingPolicy {
    /// Wormhole routing: a flit may advance as soon as the downstream virtual
    /// channel has space for one flit; a blocked worm stalls in place across
    /// several routers.
    #[default]
    Wormhole,
    /// Virtual cut-through: the head may advance only if the downstream
    /// virtual channel can buffer the *entire* packet, so blocked packets
    /// collapse into one router instead of stalling across links.
    CutThrough,
    /// Store-and-forward: additionally, the whole packet must be present in
    /// the local buffer before the head may advance.
    StoreAndForward,
}

/// Static configuration of a [`Fabric`](crate::Fabric).
///
/// Defaults follow the paper's common case: one-byte-wide links (a 32-bit
/// flit serializes in 4 cycles), wormhole switching, one virtual channel per
/// logical network, two-flit channel buffers (the simulated mesh's "each flit
/// buffer holds at most two flits").
///
/// # Examples
///
/// ```
/// use nifdy_net::{FabricConfig, SwitchingPolicy};
///
/// let cfg = FabricConfig::default()
///     .with_policy(SwitchingPolicy::CutThrough)
///     .with_vc_buf_flits(8);
/// assert_eq!(cfg.vc_buf_flits, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Virtual channels per logical network (lane). Tori need 2 for
    /// dateline deadlock avoidance; meshes need only 1.
    pub vcs_per_lane: u8,
    /// Capacity of each virtual-channel buffer, in flits.
    pub vc_buf_flits: u16,
    /// Forwarding policy.
    pub policy: SwitchingPolicy,
    /// Cycles to serialize one flit across a link (4 for the paper's 1-byte
    /// links carrying 32-bit flits; combined with [`time_mux_lanes`] this
    /// reproduces the CM-5's 4-bits-per-cycle-per-network links).
    ///
    /// [`time_mux_lanes`]: FabricConfig::time_mux_lanes
    pub flit_cycles: u16,
    /// If set, the two lanes are *strictly* time-multiplexed: a link advances
    /// request flits only on even cycles and reply flits only on odd cycles,
    /// as on the CM-5 ("each network is limited to eight bits every two
    /// cycles regardless of the traffic on the other network"). When unset,
    /// lanes are demand-multiplexed over the full link bandwidth.
    pub time_mux_lanes: bool,
    /// Capacity of each node's ejection-ready queue, in packets per lane.
    /// When full, completed packets hold their assembly buffers and flits
    /// back up into the fabric (end-point congestion becomes secondary
    /// blocking).
    pub eject_ready_pkts: u16,
    /// Largest packet the fabric must carry, in flits; sizes ejection
    /// assembly buffers and the cut-through reservation check.
    pub max_packet_flits: u16,
    /// Probability that a fully delivered packet is dropped at the receiving
    /// edge instead of being handed to the NIC. `0.0` models the reliable
    /// MPP networks of §1.1; nonzero exercises the §6.2 retransmission
    /// extension.
    pub drop_prob: f64,
    /// Seed for the fabric's internal randomness (adaptive route choice,
    /// drop lottery). The fault plane derives its own decorrelated stream
    /// from the same seed.
    pub seed: u64,
    /// Fault-injection plane configuration (bursty loss, lane-asymmetric
    /// loss, scheduled link outages, targeted drops). Inactive by default.
    pub fault: FaultConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            vcs_per_lane: 1,
            vc_buf_flits: 2,
            policy: SwitchingPolicy::Wormhole,
            flit_cycles: 4,
            time_mux_lanes: false,
            eject_ready_pkts: 1,
            max_packet_flits: 8,
            drop_prob: 0.0,
            seed: 0,
            fault: FaultConfig::default(),
        }
    }
}

impl FabricConfig {
    /// Sets the switching policy.
    pub fn with_policy(mut self, policy: SwitchingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-VC buffer capacity in flits.
    pub fn with_vc_buf_flits(mut self, flits: u16) -> Self {
        self.vc_buf_flits = flits;
        self
    }

    /// Sets the number of virtual channels per lane.
    pub fn with_vcs_per_lane(mut self, vcs: u8) -> Self {
        self.vcs_per_lane = vcs;
        self
    }

    /// Sets the flit serialization time in cycles.
    pub fn with_flit_cycles(mut self, cycles: u16) -> Self {
        self.flit_cycles = cycles;
        self
    }

    /// Enables or disables strict lane time multiplexing (CM-5 style).
    pub fn with_time_mux(mut self, on: bool) -> Self {
        self.time_mux_lanes = on;
        self
    }

    /// Sets the edge drop probability for lossy-network experiments.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the fabric randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plane configuration.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the maximum packet size in flits.
    pub fn with_max_packet_flits(mut self, flits: u16) -> Self {
        self.max_packet_flits = flits;
        self
    }

    /// Total virtual channels per input port (both lanes).
    #[inline]
    pub fn total_vcs(&self) -> usize {
        2 * self.vcs_per_lane as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, e.g. a
    /// cut-through configuration whose VC buffers cannot hold a whole packet.
    pub fn validate(&self) -> Result<(), String> {
        if self.vcs_per_lane == 0 {
            return Err("vcs_per_lane must be at least 1".into());
        }
        if self.vc_buf_flits == 0 {
            return Err("vc_buf_flits must be at least 1".into());
        }
        if self.flit_cycles == 0 {
            return Err("flit_cycles must be at least 1".into());
        }
        if self.max_packet_flits == 0 {
            return Err("max_packet_flits must be at least 1".into());
        }
        if self.policy != SwitchingPolicy::Wormhole && self.vc_buf_flits < self.max_packet_flits {
            return Err(format!(
                "{:?} requires vc_buf_flits ({}) >= max_packet_flits ({})",
                self.policy, self.vc_buf_flits, self.max_packet_flits
            ));
        }
        if !(0.0..=1.0).contains(&self.drop_prob) {
            return Err("drop_prob must be within [0, 1]".into());
        }
        self.fault.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(FabricConfig::default().validate(), Ok(()));
    }

    #[test]
    fn cut_through_needs_packet_sized_buffers() {
        let cfg = FabricConfig::default().with_policy(SwitchingPolicy::CutThrough);
        assert!(cfg.validate().is_err());
        let ok = cfg.with_vc_buf_flits(8);
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn rejects_degenerate_values() {
        assert!(FabricConfig::default()
            .with_vcs_per_lane(0)
            .validate()
            .is_err());
        assert!(FabricConfig::default()
            .with_vc_buf_flits(0)
            .validate()
            .is_err());
        assert!(FabricConfig::default()
            .with_flit_cycles(0)
            .validate()
            .is_err());
        assert!(FabricConfig::default()
            .with_drop_prob(1.5)
            .validate()
            .is_err());
    }

    #[test]
    fn total_vcs_covers_both_lanes() {
        assert_eq!(FabricConfig::default().with_vcs_per_lane(2).total_vcs(), 4);
    }

    #[test]
    fn fault_plane_config_is_validated_too() {
        let bad =
            FabricConfig::default().with_fault(FaultConfig::default().with_data_drop_prob(3.0));
        assert!(bad.validate().is_err());
        let good =
            FabricConfig::default().with_fault(FaultConfig::default().with_ack_drop_prob(0.1));
        assert_eq!(good.validate(), Ok(()));
    }
}
