//! Behavioral integration tests of the fabric: bandwidth isolation of the
//! two logical networks, adaptive load spreading, conservation under
//! stress, and switching-policy semantics.

use nifdy_net::topology::{Butterfly, Cm5FatTree, FatTree, Mesh, Torus};
use nifdy_net::{Fabric, FabricConfig, Lane, Packet, SwitchingPolicy};
use nifdy_sim::{NodeId, PacketId, SimRng};

fn data(id: u64, src: usize, dst: usize, words: u16) -> Packet {
    Packet::data(PacketId::new(id), NodeId::new(src), NodeId::new(dst), words)
}

/// Streams `count` packets from 0 to `dst` on `lane`, draining the sink
/// every cycle; returns completion time.
fn stream_time(mut fab: Fabric, dst: usize, lane: Lane, count: u64) -> u64 {
    let src = NodeId::new(0);
    let d = NodeId::new(dst);
    let mut sent = 0u64;
    let mut got = 0u64;
    while got < count {
        if sent < count && fab.can_inject(src, lane) {
            sent += 1;
            let mut p = data(sent, 0, dst, 8);
            p.lane = lane;
            fab.inject(src, p);
        }
        fab.step();
        if fab.eject(d, lane).is_some() {
            got += 1;
        }
        assert!(fab.now().as_u64() < 1_000_000, "stream stuck");
    }
    fab.now().as_u64()
}

#[test]
fn time_multiplexed_lanes_have_hard_bandwidth_isolation() {
    // On the CM-5 fabric, request-lane throughput must be identical whether
    // or not the reply lane is saturated: the slots are dedicated.
    let mk = || {
        Fabric::new(
            Box::new(Cm5FatTree::new(32)),
            FabricConfig::default().with_time_mux(true),
        )
    };

    // Baseline: request stream alone.
    let t_alone = stream_time(mk(), 31, Lane::Request, 50);

    // With competing reply traffic on the same path.
    let mut fab = mk();
    let (src, dst) = (NodeId::new(0), NodeId::new(31));
    let mut sent = 0u64;
    let mut got = 0u64;
    let mut reply_id = 100_000u64;
    while got < 50 {
        if sent < 50 && fab.can_inject(src, Lane::Request) {
            sent += 1;
            fab.inject(src, data(sent, 0, 31, 8));
        }
        if fab.can_inject(src, Lane::Reply) {
            reply_id += 1;
            let mut p = data(reply_id, 0, 31, 8);
            p.lane = Lane::Reply;
            fab.inject(src, p);
        }
        fab.step();
        if fab.eject(dst, Lane::Request).is_some() {
            got += 1;
        }
        let _ = fab.eject(dst, Lane::Reply);
        assert!(fab.now().as_u64() < 1_000_000);
    }
    let t_contended = fab.now().as_u64();
    assert_eq!(
        t_alone, t_contended,
        "strict time multiplexing must isolate the request lane"
    );
}

#[test]
fn demand_multiplexed_lanes_share_bandwidth() {
    // Without time multiplexing, saturating the reply lane must slow the
    // request stream (they share physical links).
    let mk = || Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let t_alone = stream_time(mk(), 15, Lane::Request, 50);

    let mut fab = mk();
    let (src, dst) = (NodeId::new(0), NodeId::new(15));
    let mut sent = 0u64;
    let mut got = 0u64;
    let mut reply_id = 100_000u64;
    while got < 50 {
        if sent < 50 && fab.can_inject(src, Lane::Request) {
            sent += 1;
            fab.inject(src, data(sent, 0, 15, 8));
        }
        if fab.can_inject(src, Lane::Reply) {
            reply_id += 1;
            let mut p = data(reply_id, 0, 15, 8);
            p.lane = Lane::Reply;
            fab.inject(src, p);
        }
        fab.step();
        if fab.eject(dst, Lane::Request).is_some() {
            got += 1;
        }
        let _ = fab.eject(dst, Lane::Reply);
        assert!(fab.now().as_u64() < 1_000_000);
    }
    assert!(
        fab.now().as_u64() > t_alone * 3 / 2,
        "demand multiplexing should slow the shared stream: {} vs {}",
        fab.now().as_u64(),
        t_alone
    );
}

#[test]
fn fat_tree_spreads_concurrent_streams_across_up_links() {
    // Many concurrent pair streams on the fat tree must not serialize: with
    // four up-links per router, aggregate completion should be far faster
    // than a single shared-path bottleneck would allow.
    let mut fab = Fabric::new(
        Box::new(FatTree::new(64)),
        FabricConfig::default()
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8),
    );
    // 16 cross-machine pairs.
    let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, 48 + i)).collect();
    let per_pair = 20u64;
    let mut sent = vec![0u64; pairs.len()];
    let mut got = vec![0u64; pairs.len()];
    let mut id = 0u64;
    while got.iter().sum::<u64>() < per_pair * pairs.len() as u64 {
        for (k, &(s, d)) in pairs.iter().enumerate() {
            let src = NodeId::new(s);
            if sent[k] < per_pair && fab.can_inject(src, Lane::Request) {
                id += 1;
                sent[k] += 1;
                fab.inject(src, data(id, s, d, 8));
            }
            if fab.eject(NodeId::new(d), Lane::Request).is_some() {
                got[k] += 1;
            }
        }
        fab.step();
        assert!(fab.now().as_u64() < 200_000, "streams starved: {got:?}");
    }
    // One packet of 8 flits takes 32+ cycles on a link; 320 packets over a
    // serialized single path would need > 10k cycles. Adaptive spreading
    // should come well under that.
    assert!(
        fab.now().as_u64() < 10_000,
        "no adaptive spreading: {} cycles",
        fab.now()
    );
}

#[test]
fn packets_are_conserved_under_random_stress() {
    // Random traffic on a torus: everything injected is eventually ejected,
    // exactly once, with no residue.
    let mut fab = Fabric::new(
        Box::new(Torus::d2(4, 4)),
        FabricConfig::default().with_vcs_per_lane(2).with_seed(5),
    );
    let mut rng = SimRng::from_seed_stream(77, 0);
    let mut injected = 0u64;
    let mut ejected = 0u64;
    let mut ids = std::collections::HashSet::new();
    for _ in 0..30_000 {
        for n in 0..16 {
            let src = NodeId::new(n);
            if injected < 500 && rng.gen_bool(0.05) && fab.can_inject(src, Lane::Request) {
                injected += 1;
                let mut dst = rng.gen_range_usize(0..15);
                if dst >= n {
                    dst += 1;
                }
                fab.inject(src, data(injected, n, dst, 6));
            }
            while let Some(p) = fab.eject(src, Lane::Request) {
                ejected += 1;
                assert!(ids.insert(p.id), "duplicate ejection of {:?}", p.id);
            }
        }
        fab.step();
        if injected == 500 && ejected == 500 {
            break;
        }
    }
    assert_eq!(injected, 500, "did not inject the full load");
    assert_eq!(ejected, 500, "packets lost in the torus");
    assert_eq!(fab.in_network(), 0, "residue left in the fabric");
}

#[test]
fn cut_through_beats_wormhole_with_tiny_buffers_under_contention() {
    // With per-VC buffers smaller than a packet, a blocked wormhole worm
    // stretches across routers and holds links; virtual cut-through (with
    // packet-sized buffers) collapses it into one router. Under contention
    // toward one receiver plus a bystander stream, the bystander should
    // do no worse under cut-through.
    fn bystander_time(policy: SwitchingPolicy, buf: u16) -> u64 {
        let cfg = FabricConfig::default()
            .with_policy(policy)
            .with_vc_buf_flits(buf);
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), cfg);
        // Hot traffic: 1,2,3 -> 0 (never drained). Bystander: 7 -> 4.
        for (i, s) in [1usize, 2, 3].iter().enumerate() {
            fab.inject(NodeId::new(*s), data(i as u64, *s, 0, 8));
        }
        let mut sent = 0u64;
        let mut got = 0u64;
        while got < 20 {
            let src = NodeId::new(7);
            if sent < 20 && fab.can_inject(src, Lane::Request) {
                sent += 1;
                fab.inject(src, data(100 + sent, 7, 4, 8));
            }
            fab.step();
            if fab.eject(NodeId::new(4), Lane::Request).is_some() {
                got += 1;
            }
            assert!(fab.now().as_u64() < 200_000, "bystander starved");
        }
        fab.now().as_u64()
    }
    let wh = bystander_time(SwitchingPolicy::Wormhole, 2);
    let ct = bystander_time(SwitchingPolicy::CutThrough, 8);
    assert!(
        ct <= wh * 3 / 2,
        "cut-through bystander ({ct}) should not trail wormhole ({wh}) badly"
    );
}

#[test]
fn butterfly_single_path_delivers_in_order_even_at_full_load() {
    // Dilation-1 butterflies have one path per pair: even a saturating
    // stream arrives in injection order.
    let mut fab = Fabric::new(Box::new(Butterfly::new(16, 1, 0)), FabricConfig::default());
    let (src, dst) = (NodeId::new(0), NodeId::new(13));
    let mut sent = 0u64;
    let mut last = 0u64;
    while last < 50 {
        if sent < 50 && fab.can_inject(src, Lane::Request) {
            sent += 1;
            fab.inject(src, data(sent, 0, 13, 8));
        }
        fab.step();
        if let Some(p) = fab.eject(dst, Lane::Request) {
            assert_eq!(p.id.as_u64(), last + 1, "butterfly reordered");
            last = p.id.as_u64();
        }
        assert!(fab.now().as_u64() < 100_000);
    }
}

#[test]
fn fat_tree_reorders_under_adaptive_routing_with_cross_traffic() {
    // The in-order machinery upstream only matters if fabrics really do
    // reorder. A 0 -> 63 stream (several packets in flight at once) with
    // cross traffic into the same quadrant must produce at least one
    // overtake on the adaptive fat tree.
    let mut fab = Fabric::new(
        Box::new(FatTree::new(64)),
        FabricConfig::default()
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8)
            .with_seed(3),
    );
    let mut id = 0u64;
    let mut bg_id = 1_000_000u64;
    let mut sent = 0u64;
    let mut last = 0u64;
    let mut reordered = false;
    while sent < 200 || fab.in_network() > 0 {
        let src = NodeId::new(0);
        if sent < 200 && fab.can_inject(src, Lane::Request) {
            sent += 1;
            id += 1;
            fab.inject(src, data(id, 0, 63, 8));
        }
        for s in 1..32 {
            let bsrc = NodeId::new(s);
            if fab.can_inject(bsrc, Lane::Request) {
                bg_id += 1;
                fab.inject(bsrc, data(bg_id, s, 60 + (s % 4), 8));
            }
            let _ = fab.eject(NodeId::new(60 + (s % 4)), Lane::Request);
        }
        fab.step();
        while let Some(p) = fab.eject(NodeId::new(63), Lane::Request) {
            if p.id.as_u64() < 1_000_000 {
                if p.id.as_u64() != last + 1 {
                    reordered = true;
                }
                last = last.max(p.id.as_u64());
            }
        }
        if fab.now().as_u64() > 500_000 {
            break;
        }
    }
    assert!(reordered, "adaptive fat tree never reordered the stream");
}
