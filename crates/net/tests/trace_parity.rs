//! Property test: the flight recorder's `Drop` events are an *exact*,
//! per-cause mirror of the fabric's drop counters.
//!
//! Drops are classified as rare events, so the recorder never samples them
//! out; as long as the per-node rings are sized above the drop volume, every
//! counted drop must appear in the trace with the matching cause, lane, and
//! receiving node. Any divergence means either an instrumentation gap (a
//! drop path that forgot its event) or double counting — exactly the bugs a
//! parity check exists to catch.

#![cfg(feature = "trace")]

use std::collections::HashMap;

use proptest::prelude::*;

use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, FaultConfig, GilbertElliott, Lane, LinkWindow, Packet};
use nifdy_sim::{NodeId, PacketId};
use nifdy_trace::{DropReason, EventKind, TraceConfig, TraceHandle};

/// Drives random all-to-next traffic (both lanes) through a 4×4 mesh with
/// the given faults, returning the fabric and its attached recorder.
fn run_fabric(
    faults: FaultConfig,
    uniform_drop: f64,
    seed: u64,
    packets: u32,
) -> (Fabric, TraceHandle) {
    let cfg = FabricConfig::default()
        .with_seed(seed)
        .with_drop_prob(uniform_drop)
        .with_fault(faults);
    let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), cfg);
    let trace = TraceHandle::recording(
        // Rings far above the worst-case drop volume so eviction can never
        // break parity.
        TraceConfig::default().with_capacity_per_node(1 << 16),
    );
    fab.attach_trace(trace.clone());

    let n = fab.num_nodes();
    let mut sent = vec![0u32; n];
    let mut replies = vec![0u32; n];
    let mut id = 0u64;
    // Run until every node has injected its quota (both lanes) and the
    // fabric drained, with a hard bound to keep pathological fault configs
    // finite.
    while fab.now().as_u64() < 200_000 {
        for i in 0..n {
            let src = NodeId::new(i);
            let dst = NodeId::new((i + 5) % n);
            if sent[i] < packets && fab.can_inject(src, Lane::Request) {
                id += 1;
                fab.inject(src, Packet::data(PacketId::new(id), src, dst, 8));
                sent[i] += 1;
            }
            // Reply-lane traffic so ack-lane loss has something to hit.
            if replies[i] < packets && fab.can_inject(src, Lane::Reply) {
                id += 1;
                let mut p = Packet::data(PacketId::new(id), src, dst, 2);
                p.lane = Lane::Reply;
                fab.inject(src, p);
                replies[i] += 1;
            }
        }
        fab.step();
        for i in 0..n {
            let node = NodeId::new(i);
            while fab.eject(node, Lane::Request).is_some() {}
            while fab.eject(node, Lane::Reply).is_some() {}
        }
        if sent.iter().all(|&s| s >= packets)
            && replies.iter().all(|&r| r >= packets)
            && fab.in_network() == 0
        {
            break;
        }
    }
    (fab, trace)
}

/// Asserts per-cause equality between counters and trace events.
fn assert_parity(fab: &Fabric, trace: &TraceHandle) {
    let mut by_cause: HashMap<&'static str, u64> = HashMap::new();
    let mut total_events = 0u64;
    for ev in trace.snapshot() {
        if let EventKind::Drop { cause, dst, .. } = ev.kind {
            assert_eq!(
                ev.node, dst,
                "drop events must land on the receiving node's track"
            );
            *by_cause.entry(cause.label()).or_default() += 1;
            total_events += 1;
        }
    }
    let stats = fab.stats();
    for cause in DropReason::ALL {
        let counted = stats.dropped_by_reason(cause);
        let traced = by_cause.get(cause.label()).copied().unwrap_or(0);
        assert_eq!(
            counted,
            traced,
            "cause {}: counter says {counted}, trace says {traced}",
            cause.label()
        );
    }
    let counted_total: u64 = DropReason::ALL
        .iter()
        .map(|&c| stats.dropped_by_reason(c))
        .sum();
    assert_eq!(counted_total, total_events, "total drop parity");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn drop_counters_equal_drop_events(
        seed in 0u64..10_000,
        data_pct in 0u32..30,
        ack_pct in 0u32..30,
        uniform_pct in 0u32..10,
        burst_pct in 0u32..25,
        target_pct in 0u32..50,
        down_node in 0usize..16,
        outage_from in 0u64..5_000,
        outage_span in 0u64..8_000,
    ) {
        let mut faults = FaultConfig::default()
            .with_data_drop_prob(f64::from(data_pct) / 100.0)
            .with_ack_drop_prob(f64::from(ack_pct) / 100.0)
            .with_target(
                NodeId::new((down_node + 7) % 16),
                f64::from(target_pct) / 100.0,
            );
        if burst_pct > 0 {
            faults = faults
                .with_burst(GilbertElliott::with_mean_loss(f64::from(burst_pct) / 100.0));
        }
        if outage_span > 0 {
            faults = faults.with_link_window(LinkWindow::edge(
                NodeId::new(down_node),
                outage_from + 1,
                outage_from + 1 + outage_span,
            ));
        }
        prop_assert!(faults.validate().is_ok());
        let (fab, trace) = run_fabric(faults, f64::from(uniform_pct) / 100.0, seed, 40);
        assert_parity(&fab, &trace);
    }
}

#[test]
fn clean_fabric_has_zero_drops_and_zero_drop_events() {
    let (fab, trace) = run_fabric(FaultConfig::default(), 0.0, 3, 60);
    assert_eq!(fab.stats().dropped.get(), 0);
    assert!(trace
        .snapshot()
        .iter()
        .all(|e| !matches!(e.kind, EventKind::Drop { .. })));
    assert_parity(&fab, &trace);
}
