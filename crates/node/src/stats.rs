//! Daemon counters: per-shard and whole-node frame accounting.

/// Per-shard frame and delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames demultiplexed into this shard's endpoints.
    pub frames_in: u64,
    /// Frames this shard's endpoints emitted toward a carrier.
    pub frames_out: u64,
    /// Packets delivered to this shard's receive handlers.
    pub delivered: u64,
    /// Typed delivery failures surfaced by this shard's endpoints.
    pub failures: u64,
}

/// Whole-daemon counters, with a per-shard breakdown.
///
/// Carrier-level counters (UDP refused/oversize/transport errors) are
/// deliberately *not* mirrored here: they belong to the carrier and are
/// read through [`NifdyNode::carrier_mut`](crate::NifdyNode::carrier_mut),
/// so the daemon never has to know which transport it runs on.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Completed poll rounds.
    pub rounds: u64,
    /// Frames demultiplexed into hosted endpoints (local + carrier).
    pub frames_in: u64,
    /// Frames flushed toward carriers.
    pub frames_out: u64,
    /// Frames routed daemon-internally (both endpoints hosted here).
    pub local_frames: u64,
    /// Frames whose destination is neither hosted nor routed.
    pub unroutable: u64,
    /// Carrier frames too short to carry a destination (no route peeked).
    pub foreign: u64,
    /// Frames addressed to a hosted endpoint that was down (crashed
    /// incarnation; the frame is dropped, exactly as a dead process would).
    pub dropped_down: u64,
    /// Packets delivered across all shards.
    pub delivered: u64,
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl NodeStats {
    /// Creates zeroed stats for `shards` shards.
    pub fn new(shards: usize) -> Self {
        NodeStats {
            shards: vec![ShardStats::default(); shards],
            ..NodeStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_start_zeroed_per_shard() {
        let s = NodeStats::new(3);
        assert_eq!(s.shards.len(), 3);
        assert_eq!(s.frames_in, 0);
        assert_eq!(s.shards[2], ShardStats::default());
    }
}
