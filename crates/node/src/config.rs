//! Daemon configuration: shard count, batch bounds, and the protocol and
//! supervision presets every hosted endpoint runs.

use nifdy::NifdyConfig;
use nifdy_wire::SupervisorConfig;

/// Configuration for a [`NifdyNode`](crate::NifdyNode) daemon.
///
/// # Examples
///
/// ```
/// use nifdy_node::NodeConfig;
///
/// let cfg = NodeConfig::default().with_shards(8).with_batch(128);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Number of flow-affine shards the endpoint/dialog tables are split
    /// into. Shards are ticked in deterministic order each poll round.
    pub shards: usize,
    /// Maximum frames drained from one carrier lane in one poll round — the
    /// bound that keeps a busy socket from starving the rest of the round.
    pub batch: usize,
    /// The NIFDY protocol config every hosted endpoint runs.
    pub protocol: NifdyConfig,
    /// Heartbeat/liveness/backoff timing for the per-endpoint supervisors.
    pub supervisor: SupervisorConfig,
    /// The epoch the first incarnation of every endpoint announces. A
    /// daemon process restarted from outside passes the next epoch here so
    /// surviving peers in other processes detect the restart
    /// (see [`Supervisor::with_starting_epoch`](nifdy_wire::Supervisor::with_starting_epoch)).
    pub initial_epoch: u32,
    /// Seed for supervisor backoff jitter (decorrelated per node inside).
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            shards: 4,
            batch: 64,
            protocol: NifdyConfig::mesh(),
            supervisor: SupervisorConfig::default(),
            initial_epoch: 0,
            seed: 1,
        }
    }
}

impl NodeConfig {
    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-lane batch-read bound.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the protocol config hosted endpoints run.
    pub fn with_protocol(mut self, protocol: NifdyConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the supervision timing.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Sets the epoch announced by the first incarnation of every endpoint.
    pub fn with_initial_epoch(mut self, epoch: u32) -> Self {
        self.initial_epoch = epoch;
        self
    }

    /// Sets the supervisor jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: a zero shard
    /// count, a zero batch bound, or an invalid supervisor config.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if self.batch == 0 {
            return Err("batch must be at least 1 frame per lane per round".into());
        }
        self.supervisor.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NodeConfig::default().validate().is_ok());
        assert!(NodeConfig::default().with_shards(0).validate().is_err());
        assert!(NodeConfig::default().with_batch(0).validate().is_err());
        let bad_sup = SupervisorConfig::default().with_heartbeat_every(0);
        assert!(NodeConfig::default()
            .with_supervisor(bad_sup)
            .validate()
            .is_err());
    }
}
