//! Endpoint multiplexing: the in-memory per-endpoint transport the daemon
//! demultiplexes into, and the flow-affine shard hash.

use std::collections::VecDeque;

use nifdy_net::Lane;
use nifdy_sim::{Cycle, NodeId};
use nifdy_wire::Transport;

/// The shard that owns `dst`'s endpoint — and therefore every flow whose
/// frames terminate at `dst`.
///
/// The hash is FNV-1a over the destination id alone. Keying on the
/// destination (rather than the full `(src, dst)` pair) is what makes the
/// sharding *flow-affine*: a bulk dialog's state — the OPT entry, the
/// window, the duplicate bits — lives in the receiving endpoint, so every
/// frame of the dialog must reach the shard holding that endpoint. Hashing
/// the source into the key would scatter one endpoint's inbound flows
/// across shards and force cross-shard access to a single dialog table.
pub fn shard_of(dst: NodeId, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in (dst.index() as u64).to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The shard a `(src, dst)` flow is pinned to. Provably independent of
/// `src` — see [`shard_of`] for why — so a dialog's frames never cross
/// shards no matter which peers participate.
pub fn flow_shard(src: NodeId, dst: NodeId, shards: usize) -> usize {
    let _ = src;
    shard_of(dst, shards)
}

/// One hosted endpoint's in-memory transport attachment.
///
/// The daemon owns the real sockets; each logical endpoint sees only this
/// port. Inbound frames are pushed by the daemon's demultiplexer
/// ([`push_inbound`](MuxPort::push_inbound)); outbound frames accumulate
/// locally and are drained by the daemon's flush pass
/// ([`take_outbound_into`](MuxPort::take_outbound_into)) into a per-carrier
/// batch. The clock free-runs one cycle per daemon poll round, mirroring
/// [`UdpTransport`](nifdy_wire::UdpTransport)'s per-node clock domain.
#[derive(Debug)]
pub struct MuxPort {
    node: NodeId,
    now: Cycle,
    inbound: [VecDeque<Vec<u8>>; 2],
    outbound: Vec<(NodeId, Lane, Vec<u8>)>,
}

impl MuxPort {
    /// Creates the port for `node` at cycle zero.
    pub fn new(node: NodeId) -> Self {
        MuxPort {
            node,
            now: Cycle::ZERO,
            inbound: [VecDeque::new(), VecDeque::new()],
            outbound: Vec::new(),
        }
    }

    /// Queues a demultiplexed inbound frame for the endpoint's next tick.
    pub fn push_inbound(&mut self, lane: Lane, frame: Vec<u8>) {
        self.inbound[lane.index()].push_back(frame);
    }

    /// Moves every queued outbound frame into `out`, preserving order and
    /// reusing this port's allocation for the next round.
    pub fn take_outbound_into(&mut self, out: &mut Vec<(NodeId, Lane, Vec<u8>)>) {
        out.append(&mut self.outbound);
    }

    /// Frames queued inbound and not yet consumed by the endpoint.
    pub fn inbound_len(&self) -> usize {
        self.inbound[0].len() + self.inbound[1].len()
    }
}

impl Transport for MuxPort {
    fn node(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn send(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        self.outbound.push((dst, lane, frame));
    }

    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>> {
        self.inbound[lane.index()].pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_shard_is_source_independent_and_stable() {
        for shards in [1usize, 2, 4, 7, 16] {
            for dst in 0..256 {
                let d = NodeId::new(dst);
                let owner = shard_of(d, shards);
                assert!(owner < shards);
                for src in [0usize, 1, 17, 255, 4000] {
                    assert_eq!(
                        flow_shard(NodeId::new(src), d, shards),
                        owner,
                        "flow ({src},{dst}) must land in dst's shard"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_hash_spreads_contiguous_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for dst in 0..1024 {
            counts[shard_of(NodeId::new(dst), shards)] += 1;
        }
        for (s, &n) in counts.iter().enumerate() {
            assert!(n > 0, "shard {s} owns no endpoints out of 1024");
        }
    }

    #[test]
    fn mux_port_round_trips_frames_per_lane() {
        let mut port = MuxPort::new(NodeId::new(3));
        port.push_inbound(Lane::Request, vec![1]);
        port.push_inbound(Lane::Reply, vec![2]);
        assert_eq!(port.inbound_len(), 2);
        assert_eq!(port.recv(Lane::Request), Some(vec![1]));
        assert_eq!(port.recv(Lane::Request), None);
        assert_eq!(port.recv(Lane::Reply), Some(vec![2]));

        port.send(NodeId::new(9), Lane::Request, vec![7]);
        port.send(NodeId::new(8), Lane::Reply, vec![8]);
        let mut out = Vec::new();
        port.take_outbound_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, NodeId::new(9));
        assert_eq!(out[1].2, vec![8]);
        let mut again = Vec::new();
        port.take_outbound_into(&mut again);
        assert!(again.is_empty(), "drain empties the queue");

        assert_eq!(port.now(), Cycle::ZERO);
        port.tick();
        assert_eq!(port.now().as_u64(), 1);
    }
}
