//! `nifdy-node`: a many-endpoint daemon for the NIFDY network interface.
//!
//! The wire crate gives one [`WireEndpoint`](nifdy_wire::WireEndpoint) one
//! transport attachment — one NIFDY chip, one cable. A deployment wants the
//! opposite shape: *one OS process* hosting hundreds or thousands of logical
//! nodes behind a handful of real sockets. This crate is that host:
//!
//! * [`NifdyNode`] — the daemon. It owns N supervised endpoints partitioned
//!   into **flow-affine shards** (every frame for a given destination lands
//!   in the shard that owns that destination's dialog/OPT state, so a
//!   dialog's frames never cross shards — see [`mux::flow_shard`]), drains
//!   its carriers with bounded batch reads, ticks shards in deterministic
//!   order, and flushes sends with coalesced batched writes
//!   ([`BatchTransport`](nifdy_wire::BatchTransport));
//! * [`MuxPort`] — the in-memory per-endpoint transport the daemon
//!   demultiplexes frames into and drains sends out of;
//! * [`workload`] — seeded swarm workloads (the conformance rotation and the
//!   paper's EM3D kernel) with expected per-destination delivery logs and a
//!   flit-level simulator reference run, so a daemon run — even a
//!   multi-process swarm over real UDP sockets — can be checked for
//!   delivery-order parity against the cycle-accurate simulation.
//!
//! The protocol state machine is untouched: each logical node is a plain
//! [`nifdy::NifdyUnit`] under a [`Supervisor`](nifdy_wire::Supervisor), so
//! PR 6's heartbeat/epoch recovery machinery works at daemon scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod daemon;
pub mod mux;
mod stats;
pub mod workload;

pub use config::NodeConfig;
pub use daemon::NifdyNode;
pub use mux::MuxPort;
pub use stats::{NodeStats, ShardStats};
