//! The daemon: N supervised endpoints behind flow-affine shards, driven by
//! a batched poll loop over a handful of carriers.
//!
//! One [`poll_round`](NifdyNode::poll_round) is the daemon's unit of work:
//!
//! 1. deliver frames routed daemon-internally in the previous round;
//! 2. tick each carrier and drain it with **bounded** batch reads (at most
//!    [`NodeConfig::batch`] frames per lane per round, so one busy socket
//!    cannot starve the rest), demultiplexing frames to endpoints by the
//!    destination peeked from the frame header
//!    ([`peek_route`](nifdy_wire::peek_route));
//! 3. tick shards in deterministic order (shard 0 first, slots in insertion
//!    order), collecting deliveries, failures, peer events, and outbound
//!    frames;
//! 4. flush each carrier's accumulated sends with one coalesced
//!    [`send_batch`](nifdy_wire::BatchTransport::send_batch).
//!
//! Routing is static: a destination is either *hosted* (a local endpoint,
//! reached without touching a socket) or *routed* (a `(carrier, via)` pair
//! set by [`set_route`](NifdyNode::set_route), where `via` is the
//! carrier-level address of the process hosting it — the frame bytes still
//! carry the logical destination, which is what the far daemon demuxes on).

use std::collections::{BTreeMap, VecDeque};

use nifdy::{Delivered, DeliveryFailure, OutboundPacket};
use nifdy_net::Lane;
use nifdy_sim::{Cycle, NodeId};
use nifdy_trace::{MetricsRegistry, TraceHandle};
use nifdy_wire::{peek_route, BatchTransport, PeerEvent, Supervisor, WireEndpoint};

use crate::config::NodeConfig;
use crate::mux::{shard_of, MuxPort};
use crate::stats::NodeStats;

/// Builds a fresh incarnation of one hosted endpoint (the supervisor calls
/// it on every restart).
type EndpointFactory = Box<dyn FnMut() -> WireEndpoint<MuxPort> + Send>;

/// One hosted logical node.
struct Slot {
    node: NodeId,
    sup: Supervisor<MuxPort, EndpointFactory>,
}

/// One flow-affine partition of the endpoint table.
struct Shard {
    slots: Vec<Slot>,
}

/// A many-endpoint NIFDY daemon: hosts logical nodes behind flow-affine
/// shards and carries their frames over [`BatchTransport`] carriers.
///
/// # Examples
///
/// Two endpoints in one daemon, exchanging a packet without any carrier:
///
/// ```
/// use nifdy::OutboundPacket;
/// use nifdy_node::{NifdyNode, NodeConfig};
/// use nifdy_sim::NodeId;
/// use nifdy_wire::LoopbackTransport;
///
/// let mut node: NifdyNode<LoopbackTransport> = NifdyNode::new(NodeConfig::default());
/// node.add_endpoint(NodeId::new(0), vec![]);
/// node.add_endpoint(NodeId::new(1), vec![]);
/// assert!(node.try_send(NodeId::new(0), OutboundPacket::new(NodeId::new(1), 6)));
/// let mut got = None;
/// for _ in 0..64 {
///     node.poll_round();
///     if let Some((dst, d)) = node.next_delivery() {
///         got = Some((dst, d.src));
///         break;
///     }
/// }
/// assert_eq!(got, Some((NodeId::new(1), NodeId::new(0))));
/// ```
pub struct NifdyNode<C: BatchTransport> {
    cfg: NodeConfig,
    shards: Vec<Shard>,
    /// Logical node index -> (shard, slot-in-shard).
    slot_of: BTreeMap<usize, (usize, usize)>,
    carriers: Vec<C>,
    /// Logical destination index -> (carrier index, carrier-level address).
    routes: BTreeMap<usize, (usize, NodeId)>,
    /// Per-carrier send accumulators, flushed once per round.
    outboxes: Vec<Vec<(NodeId, Lane, Vec<u8>)>>,
    /// Daemon-internal frames delivered at the start of the next round.
    pending_local: Vec<(NodeId, Lane, Vec<u8>)>,
    deliveries: VecDeque<(NodeId, Delivered)>,
    peer_events: Vec<(NodeId, PeerEvent)>,
    failures: Vec<DeliveryFailure>,
    now: Cycle,
    stats: NodeStats,
    metrics: MetricsRegistry,
    /// Reused endpoint-outbound drain buffer.
    scratch: Vec<(NodeId, Lane, Vec<u8>)>,
    /// Reused carrier recv-batch buffer.
    recv_buf: Vec<Vec<u8>>,
    trace: TraceHandle,
}

impl<C: BatchTransport> std::fmt::Debug for NifdyNode<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NifdyNode")
            .field("endpoints", &self.slot_of.len())
            .field("shards", &self.shards.len())
            .field("carriers", &self.carriers.len())
            .field("rounds", &self.stats.rounds)
            .finish_non_exhaustive()
    }
}

impl<C: BatchTransport> NifdyNode<C> {
    /// Creates an empty daemon.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NodeConfig::validate`].
    pub fn new(cfg: NodeConfig) -> Self {
        if let Err(why) = cfg.validate() {
            panic!("invalid node config: {why}");
        }
        let shards = (0..cfg.shards)
            .map(|_| Shard { slots: Vec::new() })
            .collect();
        let stats = NodeStats::new(cfg.shards);
        NifdyNode {
            cfg,
            shards,
            slot_of: BTreeMap::new(),
            carriers: Vec::new(),
            routes: BTreeMap::new(),
            outboxes: Vec::new(),
            pending_local: Vec::new(),
            deliveries: VecDeque::new(),
            peer_events: Vec::new(),
            failures: Vec::new(),
            now: Cycle::ZERO,
            stats,
            metrics: MetricsRegistry::new(),
            scratch: Vec::new(),
            recv_buf: Vec::new(),
            trace: TraceHandle::off(),
        }
    }

    /// Connects every hosted endpoint (current and future incarnations) to
    /// a flight recorder.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        for shard in &mut self.shards {
            for slot in &mut shard.slots {
                slot.sup.attach_trace(trace.clone());
            }
        }
        self.trace = trace;
    }

    /// Hosts logical node `node`, placed in its flow-affine shard
    /// ([`shard_of`]). `watched` lists the peers every incarnation
    /// heartbeats and monitors for liveness.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already hosted.
    pub fn add_endpoint(&mut self, node: NodeId, watched: Vec<NodeId>) {
        assert!(
            !self.slot_of.contains_key(&node.index()),
            "node {node} already hosted"
        );
        let s = shard_of(node, self.cfg.shards);
        let protocol = self.cfg.protocol.clone();
        let factory: EndpointFactory =
            Box::new(move || WireEndpoint::new(node, protocol.clone(), MuxPort::new(node)));
        let mut sup = Supervisor::with_starting_epoch(
            self.cfg.supervisor,
            watched,
            factory,
            self.cfg.seed,
            self.cfg.initial_epoch,
        );
        sup.attach_trace(self.trace.clone());
        let slot_idx = self.shards[s].slots.len();
        self.shards[s].slots.push(Slot { node, sup });
        self.slot_of.insert(node.index(), (s, slot_idx));
    }

    /// Attaches a carrier, returning its index for [`set_route`](Self::set_route).
    pub fn add_carrier(&mut self, carrier: C) -> usize {
        self.carriers.push(carrier);
        self.outboxes.push(Vec::new());
        self.carriers.len() - 1
    }

    /// Routes frames for logical destination `dst` out of carrier `carrier`
    /// to the carrier-level address `via` (the process hosting `dst`).
    ///
    /// # Panics
    ///
    /// Panics if `carrier` is out of range.
    pub fn set_route(&mut self, dst: NodeId, carrier: usize, via: NodeId) {
        assert!(
            carrier < self.carriers.len(),
            "carrier {carrier} not attached"
        );
        self.routes.insert(dst.index(), (carrier, via));
    }

    /// Hosted logical nodes, in id order.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slot_of.keys().map(|&i| NodeId::new(i))
    }

    /// Number of hosted logical nodes.
    pub fn num_endpoints(&self) -> usize {
        self.slot_of.len()
    }

    /// The daemon's round counter (one per [`poll_round`](Self::poll_round)).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether `node`'s current incarnation is running.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.slot(node).sup.is_up()
    }

    /// `node`'s running supervised endpoint, if up (counter inspection).
    pub fn supervised(&self, node: NodeId) -> Option<&nifdy_wire::SupervisedEndpoint<MuxPort>> {
        self.slot(node).sup.endpoint()
    }

    /// Completed supervisor restarts of `node`.
    pub fn restarts(&self, node: NodeId) -> u32 {
        self.slot(node).sup.restarts()
    }

    /// The epoch `node`'s current (or most recent) incarnation announces.
    pub fn epoch(&self, node: NodeId) -> u32 {
        self.slot(node).sup.epoch()
    }

    /// Simulates a crash of `node`: its incarnation and all protocol state
    /// drop on the floor; the supervisor restarts it (next epoch) after the
    /// configured backoff.
    pub fn kill(&mut self, node: NodeId) {
        let now = self.now;
        self.slot_mut(node).sup.kill(now);
    }

    /// Hands an outbound packet to `src`'s interface; `false` means the
    /// buffer pool is full (retry later) or the endpoint is down.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not hosted.
    pub fn try_send(&mut self, src: NodeId, pkt: OutboundPacket) -> bool {
        match self.slot_mut(src).sup.endpoint_mut() {
            Some(sup_ep) => sup_ep.endpoint_mut().try_send(pkt),
            None => false,
        }
    }

    /// Removes the next delivered packet as `(receiving node, delivery)`,
    /// in the order the shard pass observed them.
    pub fn next_delivery(&mut self) -> Option<(NodeId, Delivered)> {
        self.deliveries.pop_front()
    }

    /// Drains typed delivery failures surfaced since the last call.
    pub fn take_failures(&mut self) -> Vec<DeliveryFailure> {
        std::mem::take(&mut self.failures)
    }

    /// Drains `(observing node, event)` liveness transitions since the last
    /// call.
    pub fn take_peer_events(&mut self) -> Vec<(NodeId, PeerEvent)> {
        std::mem::take(&mut self.peer_events)
    }

    /// Daemon counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Batch-size histograms (`node.recv_batch`, `node.send_batch`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Carrier `i`, mutably — the place to read transport-specific counters
    /// (e.g. [`UdpTransport::take_error`](nifdy_wire::UdpTransport::take_error)).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn carrier_mut(&mut self, i: usize) -> &mut C {
        &mut self.carriers[i]
    }

    /// True when every running endpoint is idle and no frames wait in the
    /// daemon's own queues (pending local routes, outboxes, undrained
    /// deliveries). Frames inside a carrier are invisible here — ask the
    /// carrier, exactly as for [`WireEndpoint::is_idle`].
    pub fn is_idle(&self) -> bool {
        self.pending_local.is_empty()
            && self.deliveries.is_empty()
            && self.outboxes.iter().all(Vec::is_empty)
            && self.shards.iter().all(|shard| {
                shard.slots.iter().all(|slot| match slot.sup.endpoint() {
                    Some(sup_ep) => sup_ep.endpoint().is_idle(),
                    None => true,
                })
            })
    }

    /// One round of daemon work; see the module docs for the four phases.
    pub fn poll_round(&mut self) {
        let now = self.now;

        // Phase 1: frames routed daemon-internally last round.
        let local = std::mem::take(&mut self.pending_local);
        for (dst, lane, frame) in local {
            self.deliver_frame(dst, lane, frame);
        }

        // Phase 2: bounded batch drain of every carrier lane.
        for c in 0..self.carriers.len() {
            self.carriers[c].tick();
            for lane in Lane::ALL {
                let mut buf = std::mem::take(&mut self.recv_buf);
                let n = self.carriers[c].recv_batch(lane, self.cfg.batch, &mut buf);
                if n > 0 {
                    self.metrics.record("node.recv_batch", n as u64);
                }
                for frame in buf.drain(..) {
                    match peek_route(&frame) {
                        Some((dst, frame_lane)) => self.deliver_frame(dst, frame_lane, frame),
                        None => self.stats.foreign += 1,
                    }
                }
                self.recv_buf = buf;
            }
        }

        // Phase 3: tick shards in deterministic order.
        let mut scratch = std::mem::take(&mut self.scratch);
        for s in 0..self.shards.len() {
            for i in 0..self.shards[s].slots.len() {
                {
                    let slot = &mut self.shards[s].slots[i];
                    slot.sup.step(now);
                    let node = slot.node;
                    if let Some(sup_ep) = slot.sup.endpoint_mut() {
                        for ev in sup_ep.take_peer_events() {
                            self.peer_events.push((node, ev));
                        }
                        let ep = sup_ep.endpoint_mut();
                        while let Some(d) = ep.poll() {
                            self.deliveries.push_back((node, d));
                            self.stats.delivered += 1;
                            self.stats.shards[s].delivered += 1;
                        }
                        for f in ep.take_failures() {
                            self.failures.push(f);
                            self.stats.shards[s].failures += 1;
                        }
                        ep.transport_mut().take_outbound_into(&mut scratch);
                    }
                }
                for (dst, lane, frame) in scratch.drain(..) {
                    self.route_outbound(s, dst, lane, frame);
                }
            }
        }
        self.scratch = scratch;

        // Phase 4: one coalesced flush per carrier.
        for c in 0..self.carriers.len() {
            let batch = &mut self.outboxes[c];
            if !batch.is_empty() {
                self.metrics.record("node.send_batch", batch.len() as u64);
            }
            self.carriers[c].send_batch(batch);
        }

        self.now += 1;
        self.stats.rounds += 1;
    }

    /// Demultiplexes one frame to its hosted endpoint.
    fn deliver_frame(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        match self.slot_of.get(&dst.index()) {
            Some(&(s, i)) => match self.shards[s].slots[i].sup.endpoint_mut() {
                Some(sup_ep) => {
                    sup_ep
                        .endpoint_mut()
                        .transport_mut()
                        .push_inbound(lane, frame);
                    self.stats.frames_in += 1;
                    self.stats.shards[s].frames_in += 1;
                }
                None => self.stats.dropped_down += 1,
            },
            None => self.stats.unroutable += 1,
        }
    }

    /// Routes one endpoint-emitted frame: hosted destinations loop back
    /// daemon-internally, routed ones join their carrier's outbox.
    fn route_outbound(&mut self, from_shard: usize, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        if self.slot_of.contains_key(&dst.index()) {
            self.pending_local.push((dst, lane, frame));
            self.stats.local_frames += 1;
        } else if let Some(&(c, via)) = self.routes.get(&dst.index()) {
            self.outboxes[c].push((via, lane, frame));
            self.stats.frames_out += 1;
            self.stats.shards[from_shard].frames_out += 1;
        } else {
            self.stats.unroutable += 1;
        }
    }

    fn slot(&self, node: NodeId) -> &Slot {
        let &(s, i) = self
            .slot_of
            .get(&node.index())
            .unwrap_or_else(|| panic!("node {node} not hosted"));
        &self.shards[s].slots[i]
    }

    fn slot_mut(&mut self, node: NodeId) -> &mut Slot {
        let &(s, i) = self
            .slot_of
            .get(&node.index())
            .unwrap_or_else(|| panic!("node {node} not hosted"));
        &mut self.shards[s].slots[i]
    }
}

#[cfg(test)]
mod tests {
    use nifdy_net::UserData;
    use nifdy_wire::LoopbackTransport;

    use super::*;

    fn daemon(nodes: usize) -> NifdyNode<LoopbackTransport> {
        let mut node: NifdyNode<LoopbackTransport> = NifdyNode::new(NodeConfig::default());
        for i in 0..nodes {
            node.add_endpoint(NodeId::new(i), vec![]);
        }
        node
    }

    #[test]
    fn local_scalar_delivery_round_trips() {
        let mut node = daemon(2);
        let user = UserData {
            msg_id: 5,
            pkt_index: 0,
            msg_packets: 1,
            user_words: 4,
        };
        assert!(node.try_send(
            NodeId::new(0),
            OutboundPacket::new(NodeId::new(1), 6).with_user(user)
        ));
        let mut got = None;
        for _ in 0..64 {
            node.poll_round();
            if let Some((dst, d)) = node.next_delivery() {
                got = Some((dst, d));
                break;
            }
        }
        let (dst, d) = got.expect("delivered");
        assert_eq!(dst, NodeId::new(1));
        assert_eq!(d.src, NodeId::new(0));
        assert_eq!(d.user, user);
        assert!(node.stats().local_frames > 0, "routing stayed internal");
        assert_eq!(node.stats().frames_out, 0, "no carrier involved");
    }

    #[test]
    fn frames_demux_into_the_destination_shard_only() {
        let mut node = daemon(8);
        for src in 0..8usize {
            let dst = (src + 1) % 8;
            assert!(node.try_send(NodeId::new(src), OutboundPacket::new(NodeId::new(dst), 6)));
        }
        let mut delivered = 0;
        for _ in 0..256 {
            node.poll_round();
            while node.next_delivery().is_some() {
                delivered += 1;
            }
            if delivered == 8 && node.is_idle() {
                break;
            }
        }
        assert_eq!(delivered, 8);
        // Every frame landed in the shard that owns its destination: the
        // per-shard delivered counts must match the shard placement of the
        // eight destinations.
        let mut want = vec![0u64; node.cfg.shards];
        for dst in 0..8usize {
            want[shard_of(NodeId::new(dst), node.cfg.shards)] += 1;
        }
        let got: Vec<u64> = node.stats().shards.iter().map(|s| s.delivered).collect();
        assert_eq!(got, want, "delivery shard != flow-affine owner");
    }

    #[test]
    fn down_endpoints_drop_frames_and_refuse_sends() {
        let mut node = daemon(2);
        node.kill(NodeId::new(1));
        assert!(!node.is_up(NodeId::new(1)));
        assert!(
            !node.try_send(NodeId::new(1), OutboundPacket::new(NodeId::new(0), 6)),
            "down endpoint refuses work"
        );
        assert!(node.try_send(NodeId::new(0), OutboundPacket::new(NodeId::new(1), 6)));
        for _ in 0..4 {
            node.poll_round();
        }
        assert!(
            node.stats().dropped_down > 0,
            "frames for the dead node dropped"
        );
    }

    #[test]
    fn unroutable_frames_are_counted() {
        let mut node = daemon(1);
        // Node 0 sends to node 7, which is neither hosted nor routed.
        assert!(node.try_send(NodeId::new(0), OutboundPacket::new(NodeId::new(7), 6)));
        for _ in 0..8 {
            node.poll_round();
        }
        assert!(node.stats().unroutable > 0);
    }
}
