//! Seeded swarm workloads with simulator-reference parity.
//!
//! A [`SwarmPlan`] fixes, ahead of time, every packet each logical node
//! sends: destination, message id, packet index. Because NIFDY guarantees
//! sender order per source, the per-`(src, dst)` delivery order of *any*
//! conforming run — the flit-level simulated fabric, a single daemon, or a
//! multi-process UDP swarm — must equal the plan's send order exactly. The
//! plan therefore yields both an [`expected_log`](SwarmPlan::expected_log)
//! and a [`run_sim_reference`] that executes it on the cycle-accurate
//! fabric (the PR 4 conformance machinery), giving swarm harnesses a
//! byte-identical parity gate.
//!
//! Two generators are provided: the conformance suite's fixed-point-free
//! **rotation** permutation, and the paper's **EM3D** kernel (§4.4), whose
//! per-processor communication plan is reused verbatim from
//! [`nifdy_traffic::Em3dPlan`].

use nifdy::{Nic, NifdyUnit, OutboundPacket};
use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, UserData};
use nifdy_sim::NodeId;
use nifdy_traffic::{Em3dParams, Em3dPlan};
use nifdy_wire::conformance::DeliveryLog;
use nifdy_wire::LoopbackTransport;

use crate::config::NodeConfig;
use crate::daemon::NifdyNode;
use crate::stats::NodeStats;

/// One pre-planned packet: where it goes and how it is labelled.
#[derive(Debug, Clone, Copy)]
pub struct PlannedPacket {
    /// Destination node.
    pub dst: NodeId,
    /// Workload annotation (message id, packet index, message size).
    pub user: UserData,
}

/// A fully pre-planned workload over `nodes` logical nodes.
#[derive(Debug, Clone)]
pub struct SwarmPlan {
    /// Logical node count.
    pub nodes: usize,
    /// Packet length in words, including the header word.
    pub size_words: u16,
    /// Request bulk dialogs for every message (scalar otherwise).
    pub want_bulk: bool,
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Per-source send queues, in send order.
    pub sends: Vec<Vec<PlannedPacket>>,
}

impl SwarmPlan {
    /// The conformance rotation: node `i` streams `messages` messages of
    /// `packets_per_message` packets to partner `(i + 1 + seed mod (n-1))
    /// mod n` — a fixed-point-free permutation for any seed.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn rotation(
        nodes: usize,
        messages: u64,
        packets_per_message: u32,
        size_words: u16,
        want_bulk: bool,
        seed: u64,
    ) -> Self {
        assert!(nodes >= 2, "the permutation needs at least 2 nodes");
        let shift = 1 + (seed as usize) % (nodes - 1);
        let sends = (0..nodes)
            .map(|src| {
                let dst = NodeId::new((src + shift) % nodes);
                let mut queue = Vec::new();
                for m in 0..messages {
                    for p in 0..packets_per_message {
                        queue.push(PlannedPacket {
                            dst,
                            user: UserData {
                                msg_id: ((src as u64) << 32) | m,
                                pkt_index: p,
                                msg_packets: packets_per_message,
                                user_words: size_words.saturating_sub(2),
                            },
                        });
                    }
                }
                queue
            })
            .collect();
        SwarmPlan {
            nodes,
            size_words,
            want_bulk,
            seed,
            sends,
        }
    }

    /// The paper's EM3D kernel: per iteration, each processor sends its
    /// cross-processor arc updates — one multi-packet message per neighbor,
    /// sized by [`Em3dPlan::generate`]'s word counts — batched exactly as
    /// the library would batch them under in-order delivery.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `size_words < 3` (no payload room).
    pub fn em3d(nodes: usize, params: Em3dParams, size_words: u16, want_bulk: bool) -> Self {
        assert!(nodes >= 2, "EM3D needs at least 2 processors");
        assert!(size_words >= 3, "size_words must leave payload room");
        let plan = Em3dPlan::generate(params, nodes);
        let payload = u32::from(size_words - 2);
        let sends = (0..nodes)
            .map(|src| {
                let mut queue = Vec::new();
                let mut seq = 0u64;
                for _iter in 0..params.iters {
                    for &(dst, words) in &plan.sends[src] {
                        if words == 0 {
                            continue;
                        }
                        let packets = words.div_ceil(payload);
                        let msg_id = ((src as u64) << 32) | seq;
                        seq += 1;
                        for p in 0..packets {
                            queue.push(PlannedPacket {
                                dst: NodeId::new(dst),
                                user: UserData {
                                    msg_id,
                                    pkt_index: p,
                                    msg_packets: packets,
                                    user_words: size_words - 2,
                                },
                            });
                        }
                    }
                }
                queue
            })
            .collect();
        SwarmPlan {
            nodes,
            size_words,
            want_bulk,
            seed: params.seed,
            sends,
        }
    }

    /// Total packets the plan delivers.
    pub fn total_packets(&self) -> u64 {
        self.sends.iter().map(|q| q.len() as u64).sum()
    }

    /// The delivery log every conforming run must produce: each `(src, dst)`
    /// pair sees exactly its send-order subsequence.
    pub fn expected_log(&self) -> DeliveryLog {
        let mut log = DeliveryLog::new();
        for (src, queue) in self.sends.iter().enumerate() {
            for pkt in queue {
                log.entry((src, pkt.dst.index()))
                    .or_default()
                    .push((pkt.user.msg_id, pkt.user.pkt_index));
            }
        }
        log
    }

    /// The peers `node` exchanges frames with: everyone it sends to, plus
    /// everyone that sends to it — the natural heartbeat watch list.
    pub fn peers_of(&self, node: usize) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = Vec::new();
        let mut push = |n: NodeId| {
            if !peers.contains(&n) {
                peers.push(n);
            }
        };
        for pkt in &self.sends[node] {
            push(pkt.dst);
        }
        for (src, queue) in self.sends.iter().enumerate() {
            if queue.iter().any(|p| p.dst.index() == node) {
                push(NodeId::new(src));
            }
        }
        peers
    }
}

/// Send-side pacing for one source: offers the plan one packet at a time,
/// retrying rejected sends at the head (same pacing as the conformance
/// suite's feeder, so daemon and fabric runs see identical offered load).
#[derive(Debug)]
pub struct PlanFeeder {
    queue: std::vec::IntoIter<PlannedPacket>,
    head: Option<PlannedPacket>,
    size_words: u16,
    want_bulk: bool,
}

impl PlanFeeder {
    /// Builds the feeder for `src`'s queue of `plan`.
    pub fn new(plan: &SwarmPlan, src: usize) -> Self {
        PlanFeeder {
            queue: plan.sends[src].clone().into_iter(),
            head: None,
            size_words: plan.size_words,
            want_bulk: plan.want_bulk,
        }
    }

    /// Offers the next packet to `try_send`; a rejected packet is re-offered
    /// on the next pump.
    pub fn pump(&mut self, mut try_send: impl FnMut(OutboundPacket) -> bool) {
        let Some(planned) = self.head.take().or_else(|| self.queue.next()) else {
            return;
        };
        let pkt = OutboundPacket::new(planned.dst, self.size_words)
            .with_bulk(self.want_bulk)
            .with_user(planned.user);
        if !try_send(pkt) {
            self.head = Some(planned);
        }
    }

    /// Every planned packet has been accepted by the interface.
    pub fn done(&self) -> bool {
        self.head.is_none() && self.queue.len() == 0
    }
}

/// Mesh dimensions for `nodes`: the most square factorization.
fn mesh_dims(nodes: usize) -> (usize, usize) {
    let mut w = (nodes as f64).sqrt() as usize;
    while w > 1 && !nodes.is_multiple_of(w) {
        w -= 1;
    }
    (w.max(1), nodes / w.max(1))
}

/// Runs the plan through the cycle-accurate simulated fabric (the same
/// machinery as the conformance suite's fabric leg) and returns the
/// per-destination delivery log — the reference a daemon or swarm run must
/// match byte for byte.
///
/// # Panics
///
/// Panics if the run does not drain within `max_cycles`.
pub fn run_sim_reference(plan: &SwarmPlan, max_cycles: u64) -> DeliveryLog {
    let (w, h) = mesh_dims(plan.nodes);
    let mut fab = Fabric::new(
        Box::new(Mesh::d2(w, h)),
        FabricConfig::default().with_seed(plan.seed),
    );
    let cfg = NodeConfig::default().protocol;
    let mut units: Vec<NifdyUnit> = (0..plan.nodes)
        .map(|i| NifdyUnit::new(NodeId::new(i), cfg.clone()))
        .collect();
    let mut feeders: Vec<PlanFeeder> = (0..plan.nodes).map(|i| PlanFeeder::new(plan, i)).collect();
    let mut log = DeliveryLog::new();
    let mut delivered = 0u64;
    let mut cycles = 0u64;
    while delivered < plan.total_packets() {
        assert!(
            cycles < max_cycles,
            "sim reference wedged: {delivered}/{} packets after {cycles} cycles",
            plan.total_packets()
        );
        for (i, unit) in units.iter_mut().enumerate() {
            let now = fab.now();
            feeders[i].pump(|pkt| unit.try_send(pkt, now));
            unit.step(&mut fab);
            while let Some(d) = unit.poll(fab.now()) {
                log.entry((d.src.index(), i))
                    .or_default()
                    .push((d.user.msg_id, d.user.pkt_index));
                delivered += 1;
            }
        }
        fab.step();
        cycles += 1;
    }
    while !units.iter().all(Nic::is_idle) {
        assert!(cycles < max_cycles, "sim reference never quiesced");
        for unit in units.iter_mut() {
            unit.step(&mut fab);
            assert!(unit.poll(fab.now()).is_none(), "delivery after drain");
        }
        fab.step();
        cycles += 1;
    }
    log
}

/// What a [`run_local`] daemon run produced.
#[derive(Debug)]
pub struct LocalRunReport {
    /// Per-destination delivery order observed at the receivers.
    pub log: DeliveryLog,
    /// Poll rounds until the daemon drained.
    pub rounds: u64,
    /// The daemon's counters at the end of the run.
    pub stats: NodeStats,
}

/// Runs the whole plan inside one carrier-less daemon: every logical node
/// is hosted, so all routing stays daemon-internal. This is the daemon-side
/// leg of the parity check (and the throughput kernel `node:serve` and the
/// daemon benchmarks measure).
///
/// # Panics
///
/// Panics if the run does not drain within `max_rounds`.
pub fn run_local(plan: &SwarmPlan, cfg: NodeConfig, max_rounds: u64) -> LocalRunReport {
    let mut node: NifdyNode<LoopbackTransport> = NifdyNode::new(cfg);
    for i in 0..plan.nodes {
        node.add_endpoint(NodeId::new(i), Vec::new());
    }
    let mut feeders: Vec<PlanFeeder> = (0..plan.nodes).map(|i| PlanFeeder::new(plan, i)).collect();
    let mut log = DeliveryLog::new();
    let total = plan.total_packets();
    let mut delivered = 0u64;
    let mut rounds = 0u64;
    loop {
        assert!(
            rounds < max_rounds,
            "daemon run wedged: {delivered}/{total} packets after {rounds} rounds"
        );
        for (i, feeder) in feeders.iter_mut().enumerate() {
            feeder.pump(|pkt| node.try_send(NodeId::new(i), pkt));
        }
        node.poll_round();
        while let Some((dst, d)) = node.next_delivery() {
            log.entry((d.src.index(), dst.index()))
                .or_default()
                .push((d.user.msg_id, d.user.pkt_index));
            delivered += 1;
        }
        rounds += 1;
        if delivered >= total && feeders.iter().all(PlanFeeder::done) && node.is_idle() {
            break;
        }
    }
    LocalRunReport {
        log,
        rounds,
        stats: node.stats().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_plan_matches_its_expected_log() {
        let plan = SwarmPlan::rotation(6, 2, 3, 6, true, 4);
        assert_eq!(plan.total_packets(), 6 * 2 * 3);
        let log = plan.expected_log();
        assert_eq!(log.len(), 6, "one pair per source");
        for ((src, dst), order) in &log {
            assert_ne!(src, dst, "fixed-point-free");
            assert_eq!(order.len(), 6);
            assert_eq!(order[0], (((*src as u64) << 32), 0));
        }
    }

    #[test]
    fn em3d_plan_covers_cross_processor_arcs() {
        let params = Em3dParams::more_communication(3);
        let plan = SwarmPlan::em3d(8, params, 6, true);
        assert!(plan.total_packets() > 0, "figure-8 config communicates");
        let log = plan.expected_log();
        for ((src, dst), order) in &log {
            assert_ne!(src, dst, "only cross-processor arcs send");
            assert!(!order.is_empty());
        }
        // Deterministic for a fixed seed.
        let again = SwarmPlan::em3d(8, params, 6, true);
        assert_eq!(plan.expected_log(), again.expected_log());
    }

    #[test]
    fn peers_of_is_symmetric_for_the_rotation() {
        let plan = SwarmPlan::rotation(5, 1, 2, 6, false, 2);
        for node in 0..5 {
            let peers = plan.peers_of(node);
            assert_eq!(peers.len(), 2, "one send partner, one recv partner");
            for p in peers {
                assert!(plan.peers_of(p.index()).contains(&NodeId::new(node)));
            }
        }
    }

    #[test]
    fn feeder_retries_rejected_head() {
        let plan = SwarmPlan::rotation(2, 1, 2, 6, false, 1);
        let mut feeder = PlanFeeder::new(&plan, 0);
        feeder.pump(|_| false);
        assert!(!feeder.done(), "rejected packet stays at the head");
        let mut seen = Vec::new();
        for _ in 0..4 {
            feeder.pump(|pkt| {
                seen.push(pkt.user.pkt_index);
                true
            });
        }
        assert!(feeder.done());
        assert_eq!(seen, vec![0, 1], "order preserved across the retry");
    }

    #[test]
    fn sim_reference_reproduces_the_expected_log() {
        let plan = SwarmPlan::rotation(4, 1, 4, 6, true, 1);
        let log = run_sim_reference(&plan, 200_000);
        assert_eq!(log, plan.expected_log());
    }
}
