//! Daemon-level integration: delivery-order parity against the flit-level
//! simulator, multi-daemon exchange over a shared carrier, and supervised
//! crash recovery inside a running daemon.

use std::collections::BTreeSet;

use nifdy::NifdyConfig;
use nifdy_node::workload::{run_local, run_sim_reference, PlanFeeder, SwarmPlan};
use nifdy_node::{NifdyNode, NodeConfig};
use nifdy_sim::NodeId;
use nifdy_traffic::Em3dParams;
use nifdy_wire::conformance::DeliveryLog;
use nifdy_wire::{LoopbackHub, LoopbackTransport, PeerEvent, SupervisorConfig};

#[test]
fn daemon_rotation_matches_the_flit_level_sim() {
    let plan = SwarmPlan::rotation(12, 2, 4, 6, true, 3);
    let expected = plan.expected_log();
    let sim = run_sim_reference(&plan, 400_000);
    assert_eq!(sim, expected, "sim leg must equal send order");
    let local = run_local(&plan, NodeConfig::default().with_shards(4), 200_000);
    assert_eq!(local.log, sim, "daemon delivery order diverges from sim");
    assert_eq!(local.stats.unroutable, 0);
    assert_eq!(local.stats.foreign, 0);
}

#[test]
fn daemon_em3d_matches_the_flit_level_sim() {
    let params = Em3dParams {
        iters: 2,
        ..Em3dParams::more_communication(5)
    };
    let plan = SwarmPlan::em3d(8, params, 6, true);
    let expected = plan.expected_log();
    let sim = run_sim_reference(&plan, 600_000);
    assert_eq!(sim, expected);
    let local = run_local(&plan, NodeConfig::default().with_shards(3), 400_000);
    assert_eq!(local.log, sim, "EM3D daemon order diverges from sim");
}

#[test]
fn many_endpoint_daemon_drains_a_wide_rotation() {
    let plan = SwarmPlan::rotation(96, 1, 2, 6, false, 7);
    let local = run_local(&plan, NodeConfig::default().with_shards(8), 200_000);
    assert_eq!(local.log, plan.expected_log());
    // Sharding actually spread the endpoints.
    let busy = local
        .stats
        .shards
        .iter()
        .filter(|s| s.delivered > 0)
        .count();
    assert!(busy >= 4, "only {busy}/8 shards saw deliveries");
}

#[test]
fn two_daemons_exchange_over_a_shared_carrier() {
    let plan = SwarmPlan::rotation(6, 2, 3, 6, true, 1);
    let expected = plan.expected_log();
    let hub = LoopbackHub::new(2, 1);
    let cfg = NodeConfig::default().with_shards(2);
    let build = |carrier_id: usize, hosted: std::ops::Range<usize>| {
        let mut d: NifdyNode<LoopbackTransport> = NifdyNode::new(cfg.clone());
        let c = d.add_carrier(hub.endpoint(NodeId::new(carrier_id)));
        for n in hosted.clone() {
            d.add_endpoint(NodeId::new(n), Vec::new());
        }
        for n in 0..plan.nodes {
            if !hosted.contains(&n) {
                d.set_route(NodeId::new(n), c, NodeId::new(1 - carrier_id));
            }
        }
        d
    };
    let mut d0 = build(0, 0..3);
    let mut d1 = build(1, 3..6);
    let mut feeders: Vec<PlanFeeder> = (0..plan.nodes).map(|i| PlanFeeder::new(&plan, i)).collect();
    let mut log = DeliveryLog::new();
    let mut delivered = 0u64;
    for round in 0.. {
        assert!(round < 100_000, "swarm pair wedged at {delivered} packets");
        for (i, feeder) in feeders.iter_mut().enumerate() {
            let d = if i < 3 { &mut d0 } else { &mut d1 };
            feeder.pump(|pkt| d.try_send(NodeId::new(i), pkt));
        }
        d0.poll_round();
        d1.poll_round();
        hub.tick();
        for d in [&mut d0, &mut d1] {
            while let Some((dst, del)) = d.next_delivery() {
                log.entry((del.src.index(), dst.index()))
                    .or_default()
                    .push((del.user.msg_id, del.user.pkt_index));
                delivered += 1;
            }
        }
        if delivered >= plan.total_packets()
            && feeders.iter().all(PlanFeeder::done)
            && d0.is_idle()
            && d1.is_idle()
            && hub.in_flight() == 0
        {
            break;
        }
    }
    assert_eq!(log, expected, "cross-daemon delivery order diverges");
    assert!(d0.stats().frames_out > 0, "daemon 0 used the carrier");
    assert!(d1.stats().frames_out > 0, "daemon 1 used the carrier");
    assert_eq!(d0.stats().unroutable + d1.stats().unroutable, 0);
    // The batched paths actually ran.
    assert!(d0.metrics().histogram("node.send_batch").is_some());
    assert!(d1.metrics().histogram("node.recv_batch").is_some());
}

#[test]
fn killed_endpoint_restarts_and_the_workload_completes() {
    // Scalar traffic with a generous retry budget: the sender's §6.2
    // machinery must carry the flow across the receiver's crash window.
    let plan = SwarmPlan::rotation(2, 2, 4, 6, false, 1);
    let cfg = NodeConfig::default()
        .with_shards(2)
        .with_protocol(
            NifdyConfig::mesh()
                .with_retx_timeout(64)
                .with_adaptive_rto(true)
                .with_retx_budget(1_000),
        )
        .with_supervisor(
            SupervisorConfig::default()
                .with_heartbeat_every(8)
                .with_peer_timeout(40)
                .with_backoff(16, 256, 8),
        );
    let mut node: NifdyNode<LoopbackTransport> = NifdyNode::new(cfg);
    for i in 0..2 {
        node.add_endpoint(NodeId::new(i), vec![NodeId::new(1 - i)]);
    }
    let mut feeders: Vec<PlanFeeder> = (0..2).map(|i| PlanFeeder::new(&plan, i)).collect();
    // Duplicate deliveries are legitimate across the crash (the restarted
    // incarnation lost its duplicate bits), so completeness is the gate.
    let mut seen: BTreeSet<(usize, usize, u64, u32)> = BTreeSet::new();
    let mut killed = false;
    let mut refed = false;
    let mut events = Vec::new();
    for round in 0..50_000u64 {
        for (i, feeder) in feeders.iter_mut().enumerate() {
            feeder.pump(|pkt| node.try_send(NodeId::new(i), pkt));
        }
        node.poll_round();
        while let Some((dst, d)) = node.next_delivery() {
            seen.insert((d.src.index(), dst.index(), d.user.msg_id, d.user.pkt_index));
        }
        events.extend(node.take_peer_events());
        if !killed && seen.len() >= 2 {
            node.kill(NodeId::new(1));
            killed = true;
        }
        // Packets the dead incarnation had accepted died with it: once the
        // supervisor brings node 1 back, the application re-offers its
        // whole plan (receivers deduplicate) — the same re-offer protocol
        // a respawned swarm process runs.
        if killed && !refed && node.restarts(NodeId::new(1)) == 1 && node.is_up(NodeId::new(1)) {
            feeders[1] = PlanFeeder::new(&plan, 1);
            refed = true;
        }
        if killed
            && refed
            && seen.len() == plan.total_packets() as usize
            && feeders.iter().all(PlanFeeder::done)
            && node.is_idle()
        {
            break;
        }
        let _ = round;
    }
    assert_eq!(
        seen.len(),
        plan.total_packets() as usize,
        "workload incomplete after crash recovery"
    );
    assert_eq!(
        node.restarts(NodeId::new(1)),
        1,
        "supervisor restarted node 1"
    );
    assert_eq!(node.epoch(NodeId::new(1)), 1, "restart bumped the epoch");
    assert!(
        events
            .iter()
            .any(|(observer, ev)| *observer == NodeId::new(0)
                && matches!(ev, PeerEvent::Restarted { peer, .. } if *peer == NodeId::new(1))),
        "node 0 never detected the restart: {events:?}"
    );
    assert!(node.stats().dropped_down > 0, "crash window dropped frames");
    assert!(node.take_failures().is_empty(), "budget covered the outage");
}
