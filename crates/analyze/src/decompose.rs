//! Per-flow aggregation: percentile tables over the journey latency
//! decomposition.
//!
//! All aggregates are integer-exact where possible (nearest-rank
//! percentiles over cycle counts); means are the only floating-point
//! values, computed as `sum / count` so the decomposition means still sum
//! exactly to the end-to-end mean.

use std::collections::BTreeMap;

use crate::journey::{Journey, JourneyStatus};
use crate::stitch::JourneySet;

/// Nearest-rank percentile summary of one latency component (cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PercentileSummary {
    /// 50th percentile (nearest rank).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl PercentileSummary {
    /// Summarizes a set of samples (empty input gives all zeros).
    pub fn of(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return PercentileSummary::default();
        }
        samples.sort_unstable();
        let total: u64 = samples.iter().sum();
        PercentileSummary {
            p50: nearest_rank(samples, 50),
            p90: nearest_rank(samples, 90),
            p99: nearest_rank(samples, 99),
            max: *samples.last().expect("non-empty"),
            mean: total as f64 / samples.len() as f64,
        }
    }
}

/// Nearest-rank percentile of a sorted, non-empty slice.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    let n = sorted.len() as u64;
    let rank = (pct * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// Aggregated journey statistics for one `(src, dst)` flow.
#[derive(Debug, Clone)]
pub struct FlowStats {
    /// `(src, dst)` node indices.
    pub flow: (usize, usize),
    /// All journeys attributed to the flow.
    pub journeys: u64,
    /// Completed journeys (the latency population).
    pub completed: u64,
    /// Failed journeys.
    pub failed: u64,
    /// Journeys still in flight at trace end.
    pub in_flight: u64,
    /// Journeys flagged incomplete (partial reconstruction).
    pub incomplete: u64,
    /// Retransmissions attributed to the flow.
    pub retransmits: u64,
    /// End-to-end latency (completed journeys with observed delivery).
    pub e2e: PercentileSummary,
    /// Pre-launch queueing behind the flow (reported separately; not part
    /// of the end-to-end sum).
    pub admission: PercentileSummary,
    /// Time lost to undelivered copies.
    pub retx_penalty: PercentileSummary,
    /// Flight time of the delivered copy.
    pub transit: PercentileSummary,
    /// Delivery-to-ack-visibility time.
    pub ack: PercentileSummary,
}

/// Groups journeys by flow and summarizes each; flows sort by `(src, dst)`.
///
/// Only journeys with a full decomposition (completed, delivery observed)
/// enter the latency populations; counts cover everything. For each flow
/// the mean decomposition sums exactly to the mean end-to-end latency
/// (same denominators, integer sums), which [`crate::invariants`] checks.
pub fn per_flow(set: &JourneySet) -> Vec<FlowStats> {
    #[derive(Default)]
    struct Acc {
        journeys: u64,
        completed: u64,
        failed: u64,
        in_flight: u64,
        incomplete: u64,
        retransmits: u64,
        e2e: Vec<u64>,
        admission: Vec<u64>,
        retx_penalty: Vec<u64>,
        transit: Vec<u64>,
        ack: Vec<u64>,
    }
    let mut flows: BTreeMap<(usize, usize), Acc> = BTreeMap::new();
    for j in &set.journeys {
        let acc = flows.entry(j.flow()).or_default();
        acc.journeys += 1;
        acc.retransmits += u64::from(j.retransmits);
        if j.incomplete {
            acc.incomplete += 1;
        }
        match j.status {
            JourneyStatus::Completed => acc.completed += 1,
            JourneyStatus::Failed => acc.failed += 1,
            JourneyStatus::InFlight => acc.in_flight += 1,
        }
        if let Some(d) = j.decomposition() {
            acc.e2e.push(d.end_to_end());
            acc.retx_penalty.push(d.retx_penalty);
            acc.transit.push(d.fabric_transit);
            acc.ack.push(d.ack_turnaround);
            acc.admission.push(j.admission_wait);
        }
    }
    flows
        .into_iter()
        .map(|(flow, mut acc)| FlowStats {
            flow,
            journeys: acc.journeys,
            completed: acc.completed,
            failed: acc.failed,
            in_flight: acc.in_flight,
            incomplete: acc.incomplete,
            retransmits: acc.retransmits,
            e2e: PercentileSummary::of(&mut acc.e2e),
            admission: PercentileSummary::of(&mut acc.admission),
            retx_penalty: PercentileSummary::of(&mut acc.retx_penalty),
            transit: PercentileSummary::of(&mut acc.transit),
            ack: PercentileSummary::of(&mut acc.ack),
        })
        .collect()
}

/// True when, for every flow, the mean decomposition components sum to the
/// mean end-to-end latency within floating-point rounding.
pub fn means_are_additive(flows: &[FlowStats]) -> bool {
    flows.iter().all(|f| {
        let sum = f.retx_penalty.mean + f.transit.mean + f.ack.mean;
        (sum - f.e2e.mean).abs() <= 1e-6 * f.e2e.mean.max(1.0)
    })
}

/// Scalar or bulk journeys only — convenience for carrier comparisons.
pub fn completed_latencies(journeys: &[Journey]) -> Vec<u64> {
    let mut v: Vec<u64> = journeys.iter().filter_map(|j| j.end_to_end()).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journey::JourneyKind;

    #[test]
    fn nearest_rank_matches_definition() {
        let s = vec![10, 20, 30, 40];
        assert_eq!(nearest_rank(&s, 50), 20);
        assert_eq!(nearest_rank(&s, 99), 40);
        assert_eq!(nearest_rank(&s, 1), 10);
    }

    #[test]
    fn flow_means_sum_exactly() {
        let mut set = JourneySet::default();
        for (first, last, accept, end) in [(0u64, 0u64, 10u64, 14u64), (20, 84, 100, 108)] {
            let mut j = Journey::new(0, 1, JourneyKind::Scalar, first);
            j.has_opt = true;
            j.last_send = last;
            j.accept = Some(accept);
            j.end = Some(end);
            j.status = JourneyStatus::Completed;
            set.journeys.push(j);
        }
        let flows = per_flow(&set);
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!(f.completed, 2);
        // e2e: 14 and 88 → mean 51; parts: (0,10,4) and (64,16,8).
        assert_eq!(f.e2e.mean, 51.0);
        assert_eq!(f.retx_penalty.mean + f.transit.mean + f.ack.mean, 51.0);
        assert!(means_are_additive(&flows));
    }

    #[test]
    fn empty_population_is_all_zero() {
        let s = PercentileSummary::of(&mut Vec::new());
        assert_eq!(s, PercentileSummary::default());
    }
}
