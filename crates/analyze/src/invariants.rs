//! Conservation invariants: cross-checks between the reconstructed
//! journeys, the raw event stream, and externally supplied ground-truth
//! counters (NIC statistics, fabric statistics, wire fault counters).
//!
//! Every check is three-valued: **pass**, **fail**, or **skipped**. A
//! check is skipped — never silently passed — when trace loss makes it
//! unanswerable: sampling sheds frequent events (sends, accepts), so
//! delivery conservation needs a lossless stream, while rare events
//! (retransmits, failures, drops) survive sampling and their checks only
//! skip under ring eviction.

use crate::decompose::{self, FlowStats};
use crate::journey::JourneyStatus;
use crate::stitch::JourneySet;

/// Ground truth gathered outside the trace stream. Every field is
/// optional; an absent counter simply skips its comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExternalCounts {
    /// Packets the receivers' NICs delivered (sum of `NicStats.delivered`).
    pub delivered: Option<u64>,
    /// Retransmissions the senders performed (sum of
    /// `NicStats.retransmitted`).
    pub retransmitted: Option<u64>,
    /// Typed delivery failures surfaced (sum of
    /// `NicStats.delivery_failures`).
    pub delivery_failures: Option<u64>,
    /// Packets the simulated fabric dropped (`FabricStats.dropped`).
    pub fabric_drops: Option<u64>,
    /// Faults the wire fault-injector applied (`WireFaultStats` total).
    pub wire_faults: Option<u64>,
}

/// Outcome of one invariant check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantStatus {
    /// The books balance.
    Pass,
    /// A real discrepancy: the trace contradicts itself or the counters.
    Fail,
    /// Unanswerable under the observed trace loss.
    Skipped,
}

impl InvariantStatus {
    /// Stable lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            InvariantStatus::Pass => "pass",
            InvariantStatus::Fail => "fail",
            InvariantStatus::Skipped => "skipped",
        }
    }
}

/// One named conservation check and its outcome.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// Stable identifier (snake_case).
    pub name: &'static str,
    /// Pass / fail / skipped.
    pub status: InvariantStatus,
    /// Human-readable account of the numbers compared.
    pub detail: String,
}

impl Invariant {
    fn eq_check(name: &'static str, lhs: u64, rhs: u64, lossy: bool, what: &str) -> Invariant {
        let status = if lossy {
            InvariantStatus::Skipped
        } else if lhs == rhs {
            InvariantStatus::Pass
        } else {
            InvariantStatus::Fail
        };
        Invariant {
            name,
            status,
            detail: format!("{what}: {lhs} vs {rhs}"),
        }
    }
}

/// Runs every conservation check. `flows` must come from
/// [`decompose::per_flow`] over the same set.
pub fn check(set: &JourneySet, flows: &[FlowStats], ext: &ExternalCounts) -> Vec<Invariant> {
    let mut out = Vec::new();
    // Frequent events (sends/accepts) are shed by sampling *and*
    // eviction; rare events survive sampling but not eviction.
    let frequent_lossy = !set.loss.is_lossless();
    let rare_lossy = set.loss.evicted_total() > 0;

    // 1. Internal bookkeeping: every journey is in exactly one state.
    let (c, f, i) = (
        set.with_status(JourneyStatus::Completed),
        set.with_status(JourneyStatus::Failed),
        set.with_status(JourneyStatus::InFlight),
    );
    out.push(Invariant::eq_check(
        "journey_accounting",
        c + f + i,
        set.journeys.len() as u64,
        false,
        &format!("completed {c} + failed {f} + in_flight {i} vs total"),
    ));

    // 2. Delivery conservation: every delivered packet has a journey with
    //    an observed delivery point, and no delivery matched nothing.
    out.push(Invariant::eq_check(
        "accepts_have_journeys",
        set.orphan_accepts,
        0,
        frequent_lossy,
        "orphan accepts vs zero",
    ));
    if let Some(delivered) = ext.delivered {
        out.push(Invariant::eq_check(
            "delivered_equals_journeys",
            set.accepted(),
            delivered,
            frequent_lossy,
            "journeys with observed delivery vs NIC delivered count",
        ));
    }

    // 3. Retransmission conservation: per-journey attributions, raw
    //    events, and the senders' counters all agree.
    out.push(Invariant::eq_check(
        "retransmits_attributed",
        set.journey_retransmits(),
        set.retx_events,
        rare_lossy,
        "journey-attributed retransmits vs Retransmit events",
    ));
    if let Some(retx) = ext.retransmitted {
        out.push(Invariant::eq_check(
            "retransmits_counted",
            set.retx_events,
            retx,
            rare_lossy,
            "Retransmit events vs NIC retransmitted count",
        ));
    }

    // 4. Failure conservation: every surfaced failure terminated a
    //    journey (or rode a dialog teardown that did).
    out.push(Invariant::eq_check(
        "failures_terminate_journeys",
        set.matched_failures,
        set.delivery_fail_events,
        rare_lossy,
        "matched failures vs DeliveryFail events",
    ));
    if let Some(fails) = ext.delivery_failures {
        out.push(Invariant::eq_check(
            "failures_counted",
            set.delivery_fail_events,
            fails,
            rare_lossy,
            "DeliveryFail events vs NIC delivery_failures count",
        ));
    }

    // 5. Acks never outrun deliveries on a lossless stream.
    out.push(Invariant::eq_check(
        "acked_implies_accepted",
        set.acked_without_accept,
        0,
        frequent_lossy,
        "acked-but-unobserved deliveries vs zero",
    ));

    // 6. Carrier loss accounting (whichever carrier supplied a counter).
    if let Some(drops) = ext.fabric_drops {
        out.push(Invariant::eq_check(
            "fabric_drops_traced",
            set.drop_events,
            drops,
            rare_lossy,
            "Drop events vs FabricStats.dropped",
        ));
    }
    if let Some(faults) = ext.wire_faults {
        out.push(Invariant::eq_check(
            "wire_faults_traced",
            set.wire_fault_events,
            faults,
            rare_lossy,
            "WireFault events vs injector count",
        ));
    }

    // 7. Decomposition additivity: per flow, mean components sum to the
    //    mean end-to-end latency (exact by construction; this guards the
    //    aggregation code itself).
    out.push(Invariant {
        name: "decomposition_additive",
        status: if decompose::means_are_additive(flows) {
            InvariantStatus::Pass
        } else {
            InvariantStatus::Fail
        },
        detail: format!("checked {} flows", flows.len()),
    });

    // 8. Stray protocol events that matched no journey.
    out.push(Invariant::eq_check(
        "no_unmatched_events",
        set.unmatched_events,
        0,
        frequent_lossy,
        "unmatched protocol events vs zero",
    ));

    out
}

/// True when no check failed (skips are acceptable — they are reported).
pub fn all_green(invariants: &[Invariant]) -> bool {
    invariants.iter().all(|i| i.status != InvariantStatus::Fail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journey::{Journey, JourneyKind};
    use nifdy_trace::TraceLoss;

    fn completed_set(n: usize) -> JourneySet {
        let mut set = JourneySet::default();
        for k in 0..n {
            let mut j = Journey::new(0, 1, JourneyKind::Scalar, k as u64 * 10);
            j.has_opt = true;
            j.accept = Some(k as u64 * 10 + 5);
            j.end = Some(k as u64 * 10 + 8);
            j.status = JourneyStatus::Completed;
            set.journeys.push(j);
        }
        set
    }

    #[test]
    fn clean_books_pass() {
        let set = completed_set(3);
        let flows = decompose::per_flow(&set);
        let ext = ExternalCounts {
            delivered: Some(3),
            retransmitted: Some(0),
            delivery_failures: Some(0),
            ..ExternalCounts::default()
        };
        let invs = check(&set, &flows, &ext);
        assert!(all_green(&invs), "{invs:?}");
        assert!(invs.iter().all(|i| i.status == InvariantStatus::Pass));
    }

    #[test]
    fn delivered_mismatch_fails() {
        let set = completed_set(3);
        let flows = decompose::per_flow(&set);
        let ext = ExternalCounts {
            delivered: Some(4), // one delivery has no journey
            ..ExternalCounts::default()
        };
        let invs = check(&set, &flows, &ext);
        assert!(!all_green(&invs));
        let bad = invs
            .iter()
            .find(|i| i.name == "delivered_equals_journeys")
            .unwrap();
        assert_eq!(bad.status, InvariantStatus::Fail);
    }

    #[test]
    fn loss_downgrades_to_skipped_not_failed() {
        let mut set = completed_set(2);
        set.orphan_accepts = 1; // would fail on a lossless stream
        set.loss = TraceLoss {
            evicted: vec![4],
            sampled_out: vec![0],
        };
        let flows = decompose::per_flow(&set);
        let invs = check(&set, &flows, &ExternalCounts::default());
        assert!(all_green(&invs), "loss must skip, not fail: {invs:?}");
        let orphans = invs
            .iter()
            .find(|i| i.name == "accepts_have_journeys")
            .unwrap();
        assert_eq!(orphans.status, InvariantStatus::Skipped);
    }
}
