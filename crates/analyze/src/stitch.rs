//! Journey stitching: folds a merged trace stream into one [`Journey`]
//! per launched data packet.
//!
//! The stitcher exploits two protocol guarantees to correlate sender and
//! receiver events without any packet identifier on the wire:
//!
//! * **Scalar**: the OPT admits at most one unacked scalar per
//!   destination, so scalar journeys on a `(src, dst)` flow are strictly
//!   serialized — the receiver's next `ScalarAccept { src }` always
//!   belongs to the oldest unaccepted journey of that flow.
//! * **Bulk**: a sender holds at most one live dialog per peer, dialog
//!   *generations* on a flow are time-ordered, and the receiver streams a
//!   generation's packets strictly in order — the nth `BulkAccept` of a
//!   generation is absolute sequence n. The wire residue
//!   (`seq mod 256`) cross-checks every match; a mismatch flags the
//!   journey [`incomplete`](Journey::incomplete) instead of silently
//!   mis-pairing.
//!
//! Both `ScalarAccept` and `BulkAccept` are emitted by the protocol unit
//! itself, so the same stitcher serves the simulated fabric and the byte
//! wire unchanged.

use std::collections::BTreeMap;

use nifdy_trace::{DialogEnd, EventKind, TraceEvent, TraceLoss};

use crate::journey::{Journey, JourneyKind, JourneyStatus};

/// Wire sequence space (`seq mod 256` is what frames carry).
const SEQ_SPACE: u64 = 256;

/// Everything the stitcher reconstructed from one trace stream.
#[derive(Debug, Default)]
pub struct JourneySet {
    /// All journeys, in launch order.
    pub journeys: Vec<Journey>,
    /// Accept events that matched no launched journey. Zero on a lossless
    /// trace; under eviction/sampling these are expected and downgrade the
    /// conservation checks to *skipped*.
    pub orphan_accepts: u64,
    /// Retransmit / clear / close events that matched no journey.
    pub unmatched_events: u64,
    /// Journeys retired by a sender-visible ack whose delivery event was
    /// never observed (ack proves delivery; the accept record is missing).
    pub acked_without_accept: u64,
    /// Total `Retransmit` events in the stream.
    pub retx_events: u64,
    /// Total `DeliveryFail` events in the stream.
    pub delivery_fail_events: u64,
    /// `DeliveryFail` events that terminated a reconstructed journey (or
    /// accompanied a dialog teardown that did).
    pub matched_failures: u64,
    /// Total fabric `Drop` events (simulated carrier).
    pub drop_events: u64,
    /// Total `WireFault` events (byte-wire carrier).
    pub wire_fault_events: u64,
    /// Sender dialog generations still open when the trace ended:
    /// `(src, dst, dialog)`.
    pub wedged_dialogs: Vec<(usize, usize, u8)>,
    /// Per-node loss accounting carried through from the recorder.
    pub loss: TraceLoss,
}

impl JourneySet {
    /// Journeys whose delivery point was observed (`accept` set). This —
    /// not `completed` — is what must equal the receivers' delivered
    /// count: a packet can be delivered yet *fail* on the sender side
    /// (its acks were swallowed, the retry budget ran out).
    pub fn accepted(&self) -> u64 {
        self.journeys.iter().filter(|j| j.accept.is_some()).count() as u64
    }

    /// Count of journeys in the given terminal state.
    pub fn with_status(&self, status: JourneyStatus) -> u64 {
        self.journeys.iter().filter(|j| j.status == status).count() as u64
    }

    /// Sum of per-journey retransmission attributions.
    pub fn journey_retransmits(&self) -> u64 {
        self.journeys.iter().map(|j| u64::from(j.retransmits)).sum()
    }

    /// Journeys flagged incomplete (see [`Journey::incomplete`]).
    pub fn incomplete(&self) -> u64 {
        self.journeys.iter().filter(|j| j.incomplete).count() as u64
    }
}

/// A sender-side dialog generation: one `DialogOpen`..`DialogClose` span.
#[derive(Debug)]
struct SenderGen {
    dialog: u8,
    /// Journey indices by absolute sequence.
    journeys: Vec<usize>,
    /// Next absolute sequence to assign (count of observed sends).
    send_count: u64,
    /// Next absolute sequence the receiver will accept.
    accept_count: u64,
    /// No further accepts can belong to this generation.
    accepts_done: bool,
    /// Sender closed the dialog (exit or teardown).
    closed: bool,
    /// The generation was inferred from a `BulkSend` with no observed
    /// `DialogOpen` (evicted) — its journeys are suspect.
    implicit: bool,
}

#[derive(Debug, Default)]
struct State {
    /// Open scalar journey indices per `(src, dst)`, oldest first.
    scalar_open: BTreeMap<(usize, usize), Vec<usize>>,
    /// Bulk generations per `(src, dst)`, oldest first.
    bulk: BTreeMap<(usize, usize), Vec<SenderGen>>,
    /// `DialogClose(TornDown)` events awaiting their paired
    /// `DeliveryFail` on the same flow (teardown emits both).
    pending_teardown_fail: BTreeMap<(usize, usize), u64>,
    /// `OptInsert` events awaiting their `ScalarSend` (the unit emits the
    /// insert first, within the same launch).
    pending_opt: BTreeMap<(usize, usize), u64>,
}

/// Reconstructs journeys from a time-ordered event stream (as produced by
/// the recorder / [`nifdy_trace::export::merge_snapshots`]) plus the
/// recorder's loss accounting.
pub fn stitch(events: &[TraceEvent], loss: &TraceLoss) -> JourneySet {
    let mut set = JourneySet {
        loss: loss.clone(),
        ..JourneySet::default()
    };
    let mut st = State::default();

    for ev in events {
        let node = ev.node.index();
        let at = ev.at.as_u64();
        match ev.kind {
            EventKind::ScalarSend { dst, .. } => {
                let flow = (node, dst.index());
                let idx = set.journeys.len();
                let mut j = Journey::new(node, dst.index(), JourneyKind::Scalar, at);
                // The launch emits `OptInsert` just before `ScalarSend`,
                // so the flag is waiting when the send arrives.
                let pending = st.pending_opt.entry(flow).or_default();
                if *pending > 0 {
                    *pending -= 1;
                    j.has_opt = true;
                }
                set.journeys.push(j);
                st.scalar_open.entry(flow).or_default().push(idx);
            }
            EventKind::OptInsert { dst, .. } => {
                *st.pending_opt.entry((node, dst.index())).or_default() += 1;
            }
            EventKind::ScalarAccept { src } => {
                let flow = (src.index(), node);
                let open = st.scalar_open.entry(flow).or_default();
                match open.iter().position(|&i| set.journeys[i].accept.is_none()) {
                    Some(pos) => {
                        let idx = open[pos];
                        let j = &mut set.journeys[idx];
                        j.accept = Some(at);
                        if !j.has_opt {
                            // Fire-and-forget: delivery is the whole story.
                            j.status = JourneyStatus::Completed;
                            open.remove(pos);
                        }
                    }
                    None => set.orphan_accepts += 1,
                }
            }
            EventKind::OptClear { dst, .. } => {
                let open = st.scalar_open.entry((node, dst.index())).or_default();
                // Prefer the oldest OPT-tracked journey that was seen
                // delivered; fall back to an undelivered one (its accept
                // record is missing, but the ack proves delivery).
                let pos = open
                    .iter()
                    .position(|&i| set.journeys[i].has_opt && set.journeys[i].accept.is_some())
                    .or_else(|| open.iter().position(|&i| set.journeys[i].has_opt));
                match pos {
                    Some(pos) => {
                        let idx = open.remove(pos);
                        let j = &mut set.journeys[idx];
                        j.end = Some(at);
                        j.status = JourneyStatus::Completed;
                        if j.accept.is_none() {
                            j.incomplete = true;
                            set.acked_without_accept += 1;
                        }
                    }
                    None => set.unmatched_events += 1,
                }
            }
            EventKind::Retransmit {
                dst, bulk: false, ..
            } => {
                set.retx_events += 1;
                let open = st.scalar_open.entry((node, dst.index())).or_default();
                let pos = open
                    .iter()
                    .position(|&i| set.journeys[i].has_opt && set.journeys[i].accept.is_none())
                    .or_else(|| open.iter().position(|&i| set.journeys[i].has_opt));
                match pos {
                    Some(pos) => {
                        let j = &mut set.journeys[open[pos]];
                        j.retransmits += 1;
                        if j.accept.is_none() {
                            j.last_send = at;
                        }
                    }
                    None => set.unmatched_events += 1,
                }
            }
            EventKind::DeliveryFail { dst, .. } => {
                set.delivery_fail_events += 1;
                let flow = (node, dst.index());
                let open = st.scalar_open.entry(flow).or_default();
                if let Some(pos) = open.iter().position(|&i| set.journeys[i].has_opt) {
                    let idx = open.remove(pos);
                    let j = &mut set.journeys[idx];
                    j.status = JourneyStatus::Failed;
                    j.end = Some(at);
                    set.matched_failures += 1;
                } else if st.pending_teardown_fail.get(&flow).copied().unwrap_or(0) > 0 {
                    // The companion of a dialog teardown already handled
                    // under `DialogClose(TornDown)`.
                    *st.pending_teardown_fail.entry(flow).or_default() -= 1;
                    set.matched_failures += 1;
                } else {
                    set.unmatched_events += 1;
                }
            }
            EventKind::DialogOpen { peer, dialog, .. } => {
                st.bulk
                    .entry((node, peer.index()))
                    .or_default()
                    .push(SenderGen {
                        dialog,
                        journeys: Vec::new(),
                        send_count: 0,
                        accept_count: 0,
                        accepts_done: false,
                        closed: false,
                        implicit: false,
                    });
            }
            EventKind::BulkSend {
                dst,
                dialog,
                seq,
                exit: _,
            } => {
                let gens = st.bulk.entry((node, dst.index())).or_default();
                if !gens.last().is_some_and(|g| g.dialog == dialog && !g.closed) {
                    // The open was evicted: infer a generation, flag it.
                    gens.push(SenderGen {
                        dialog,
                        journeys: Vec::new(),
                        send_count: 0,
                        accept_count: 0,
                        accepts_done: false,
                        closed: false,
                        implicit: true,
                    });
                }
                let gen = gens.last_mut().expect("just ensured non-empty");
                let abs = gen.send_count;
                gen.send_count += 1;
                let idx = set.journeys.len();
                let mut j = Journey::new(
                    node,
                    dst.index(),
                    JourneyKind::Bulk {
                        dialog,
                        abs_seq: abs,
                    },
                    at,
                );
                if gen.implicit || abs % SEQ_SPACE != u64::from(seq) {
                    j.incomplete = true;
                }
                set.journeys.push(j);
                gen.journeys.push(idx);
            }
            EventKind::Retransmit {
                dst,
                bulk: true,
                seq,
                ..
            } => {
                set.retx_events += 1;
                let gens = st.bulk.entry((node, dst.index())).or_default();
                let mut target = None;
                'gens: for gen in gens.iter() {
                    for &idx in &gen.journeys {
                        let j = &set.journeys[idx];
                        if j.end.is_none()
                            && j.accept.is_none()
                            && bulk_abs(j) % SEQ_SPACE == u64::from(seq)
                        {
                            target = Some(idx);
                            break 'gens;
                        }
                    }
                }
                if target.is_none() {
                    // Ack lost after delivery: the copy retried anyway.
                    'gens2: for gen in gens.iter() {
                        for &idx in &gen.journeys {
                            let j = &set.journeys[idx];
                            if j.end.is_none() && bulk_abs(j) % SEQ_SPACE == u64::from(seq) {
                                target = Some(idx);
                                break 'gens2;
                            }
                        }
                    }
                }
                match target {
                    Some(idx) => {
                        let j = &mut set.journeys[idx];
                        j.retransmits += 1;
                        if j.accept.is_none() {
                            j.last_send = at;
                        }
                    }
                    None => set.unmatched_events += 1,
                }
            }
            EventKind::BulkAccept {
                src,
                dialog,
                seq,
                exit,
            } => {
                let gens = st.bulk.entry((src.index(), node)).or_default();
                match gens
                    .iter_mut()
                    .find(|g| g.dialog == dialog && !g.accepts_done)
                {
                    Some(gen) => {
                        let abs = gen.accept_count;
                        gen.accept_count += 1;
                        if exit {
                            gen.accepts_done = true;
                        }
                        match gen.journeys.get(abs as usize) {
                            Some(&idx) => {
                                let j = &mut set.journeys[idx];
                                j.accept = Some(at);
                                if abs % SEQ_SPACE != u64::from(seq) {
                                    j.incomplete = true;
                                }
                            }
                            // The send record was shed; the delivery has
                            // no journey to land on.
                            None => set.orphan_accepts += 1,
                        }
                    }
                    None => set.orphan_accepts += 1,
                }
            }
            EventKind::WindowAdvance {
                peer,
                dialog,
                acked,
                ..
            } => {
                let gens = st.bulk.entry((node, peer.index())).or_default();
                if let Some(gen) = gens
                    .iter_mut()
                    .rev()
                    .find(|g| g.dialog == dialog && !g.closed)
                {
                    let upto = (acked as usize).min(gen.journeys.len());
                    for &idx in &gen.journeys[..upto] {
                        let j = &mut set.journeys[idx];
                        if j.end.is_none() {
                            j.end = Some(at);
                            j.status = JourneyStatus::Completed;
                            if j.accept.is_none() {
                                j.incomplete = true;
                                set.acked_without_accept += 1;
                            }
                        }
                    }
                } else {
                    set.unmatched_events += 1;
                }
            }
            EventKind::DialogClose { peer, dialog, end } => match end {
                // Sender-side closes.
                DialogEnd::Exit | DialogEnd::TornDown => {
                    let flow = (node, peer.index());
                    let gens = st.bulk.entry(flow).or_default();
                    match gens
                        .iter_mut()
                        .rev()
                        .find(|g| g.dialog == dialog && !g.closed)
                    {
                        Some(gen) => {
                            gen.closed = true;
                            gen.accepts_done = true;
                            if end == DialogEnd::TornDown {
                                for &idx in &gen.journeys {
                                    let j = &mut set.journeys[idx];
                                    if j.end.is_none() {
                                        j.status = JourneyStatus::Failed;
                                        j.end = Some(at);
                                    }
                                }
                                // The paired DeliveryFail follows.
                                *st.pending_teardown_fail.entry(flow).or_default() += 1;
                            }
                        }
                        None => set.unmatched_events += 1,
                    }
                }
                // Receiver-side reclaim: `peer` is the (vanished) sender.
                DialogEnd::Reclaimed => {
                    let gens = st.bulk.entry((peer.index(), node)).or_default();
                    if let Some(gen) = gens
                        .iter_mut()
                        .rev()
                        .find(|g| g.dialog == dialog && !g.accepts_done)
                    {
                        gen.accepts_done = true;
                    }
                }
            },
            EventKind::Drop { .. } => set.drop_events += 1,
            EventKind::WireFault { .. } => set.wire_fault_events += 1,
            // Remaining vocabulary carries no journey state: acks and
            // frames (sub-packet granularity), RTT/eligibility/heartbeat/
            // watchdog telemetry, grant/reject handshakes, restarts.
            _ => {}
        }
    }

    finish(&mut set, st);
    set
}

/// Absolute sequence of a bulk journey (scalar journeys never reach here).
fn bulk_abs(j: &Journey) -> u64 {
    match j.kind {
        JourneyKind::Bulk { abs_seq, .. } => abs_seq,
        JourneyKind::Scalar => 0,
    }
}

/// Terminal bookkeeping: in-flight marking, wedged-dialog collection,
/// loss flagging, and admission-wait computation.
fn finish(set: &mut JourneySet, st: State) {
    for open in st.scalar_open.values() {
        for &idx in open {
            let j = &mut set.journeys[idx];
            j.status = JourneyStatus::InFlight;
            j.incomplete = true;
        }
    }
    for (&(src, dst), gens) in &st.bulk {
        for gen in gens {
            if !gen.closed {
                set.wedged_dialogs.push((src, dst, gen.dialog));
            }
            for &idx in &gen.journeys {
                let j = &mut set.journeys[idx];
                if j.end.is_none() && j.status == JourneyStatus::InFlight {
                    j.incomplete = true;
                }
            }
        }
    }

    // A node that evicted ring entries may have shed any event; every
    // journey touching it is suspect.
    let lossy: Vec<usize> = set.loss.lossy_nodes();
    if !lossy.is_empty() {
        for j in &mut set.journeys {
            if lossy.contains(&j.src) || lossy.contains(&j.dst) {
                j.incomplete = true;
            }
        }
    }

    // Admission wait: per-flow gap behind the predecessor journey.
    // Scalars on a flow are serialized behind the predecessor's
    // retirement; bulk packets pipeline, so the reference point is the
    // predecessor's launch.
    let mut prev_scalar: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut prev_bulk: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for j in &mut set.journeys {
        let flow = (j.src, j.dst);
        match j.kind {
            JourneyKind::Scalar => {
                if let Some(&prev_end) = prev_scalar.get(&flow) {
                    j.admission_wait = j.first_send.saturating_sub(prev_end);
                }
                let retired = j.end.or(j.accept).unwrap_or(j.first_send);
                prev_scalar.insert(flow, retired);
            }
            JourneyKind::Bulk { .. } => {
                if let Some(&prev_send) = prev_bulk.get(&flow) {
                    j.admission_wait = j.first_send.saturating_sub(prev_send);
                }
                prev_bulk.insert(flow, j.first_send);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_sim::{Cycle, NodeId};

    fn ev(seq: u64, at: u64, node: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            at: Cycle::new(at),
            node: NodeId::new(node),
            kind,
        }
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn scalar_journey_full_lifecycle() {
        let events = vec![
            ev(
                0,
                10,
                0,
                EventKind::OptInsert {
                    dst: n(1),
                    occupancy: 1,
                },
            ),
            ev(
                1,
                10,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 8,
                },
            ),
            ev(
                2,
                74,
                0,
                EventKind::Retransmit {
                    dst: n(1),
                    rto: 64,
                    retries: 1,
                    bulk: false,
                    seq: 0,
                },
            ),
            ev(3, 90, 1, EventKind::ScalarAccept { src: n(0) }),
            ev(
                4,
                103,
                0,
                EventKind::OptClear {
                    dst: n(1),
                    occupancy: 0,
                },
            ),
        ];
        let set = stitch(&events, &TraceLoss::default());
        assert_eq!(set.journeys.len(), 1);
        let j = &set.journeys[0];
        assert_eq!(j.status, JourneyStatus::Completed);
        assert!(!j.incomplete);
        assert_eq!(j.retransmits, 1);
        assert_eq!(j.end_to_end(), Some(93));
        let d = j.decomposition().unwrap();
        assert_eq!(
            (d.retx_penalty, d.fabric_transit, d.ack_turnaround),
            (64, 16, 13)
        );
        assert_eq!(set.retx_events, 1);
        assert_eq!(set.orphan_accepts, 0);
    }

    #[test]
    fn serialized_scalars_match_in_order() {
        // Two back-to-back acked scalars on the same flow: accepts and
        // clears must pair oldest-first, and the second journey's
        // admission wait is the gap behind the first's clear.
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::OptInsert {
                    dst: n(1),
                    occupancy: 1,
                },
            ),
            ev(
                1,
                0,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 1,
                },
            ),
            ev(2, 8, 1, EventKind::ScalarAccept { src: n(0) }),
            ev(
                3,
                16,
                0,
                EventKind::OptClear {
                    dst: n(1),
                    occupancy: 0,
                },
            ),
            ev(
                4,
                20,
                0,
                EventKind::OptInsert {
                    dst: n(1),
                    occupancy: 1,
                },
            ),
            ev(
                5,
                20,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 1,
                },
            ),
            ev(6, 28, 1, EventKind::ScalarAccept { src: n(0) }),
            ev(
                7,
                36,
                0,
                EventKind::OptClear {
                    dst: n(1),
                    occupancy: 0,
                },
            ),
        ];
        let set = stitch(&events, &TraceLoss::default());
        assert_eq!(set.journeys.len(), 2);
        assert!(set
            .journeys
            .iter()
            .all(|j| j.status == JourneyStatus::Completed));
        assert_eq!(set.journeys[0].admission_wait, 0);
        assert_eq!(set.journeys[1].admission_wait, 4); // launched 20, prior cleared 16
    }

    #[test]
    fn bulk_generation_stitches_by_order_and_residue() {
        let mk_send = |seq: u8, exit: bool| EventKind::BulkSend {
            dst: n(1),
            dialog: 0,
            seq,
            exit,
        };
        let mk_accept = |seq: u8, exit: bool| EventKind::BulkAccept {
            src: n(0),
            dialog: 0,
            seq,
            exit,
        };
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::DialogOpen {
                    peer: n(1),
                    dialog: 0,
                    window: 8,
                },
            ),
            ev(1, 1, 0, mk_send(0, false)),
            ev(2, 2, 0, mk_send(1, false)),
            ev(3, 3, 0, mk_send(2, true)),
            ev(4, 9, 1, mk_accept(0, false)),
            ev(5, 10, 1, mk_accept(1, false)),
            ev(6, 11, 1, mk_accept(2, true)),
            ev(
                7,
                18,
                0,
                EventKind::WindowAdvance {
                    peer: n(1),
                    dialog: 0,
                    acked: 3,
                    outstanding: 0,
                },
            ),
            ev(
                8,
                18,
                0,
                EventKind::DialogClose {
                    peer: n(1),
                    dialog: 0,
                    end: DialogEnd::Exit,
                },
            ),
        ];
        let set = stitch(&events, &TraceLoss::default());
        assert_eq!(set.journeys.len(), 3);
        assert!(set
            .journeys
            .iter()
            .all(|j| j.status == JourneyStatus::Completed));
        assert!(set.journeys.iter().all(|j| !j.incomplete));
        assert_eq!(set.wedged_dialogs.len(), 0);
        assert_eq!(set.journeys[2].end, Some(18));
        assert_eq!(set.journeys[1].accept, Some(10));
    }

    #[test]
    fn teardown_fails_remaining_and_absorbs_delivery_fail() {
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::DialogOpen {
                    peer: n(1),
                    dialog: 0,
                    window: 8,
                },
            ),
            ev(
                1,
                1,
                0,
                EventKind::BulkSend {
                    dst: n(1),
                    dialog: 0,
                    seq: 0,
                    exit: false,
                },
            ),
            ev(
                2,
                500,
                0,
                EventKind::DialogClose {
                    peer: n(1),
                    dialog: 0,
                    end: DialogEnd::TornDown,
                },
            ),
            ev(
                3,
                500,
                0,
                EventKind::DeliveryFail {
                    dst: n(1),
                    retries: 7,
                },
            ),
        ];
        let set = stitch(&events, &TraceLoss::default());
        assert_eq!(set.journeys.len(), 1);
        assert_eq!(set.journeys[0].status, JourneyStatus::Failed);
        assert_eq!(set.delivery_fail_events, 1);
        assert_eq!(set.matched_failures, 1);
        assert_eq!(set.unmatched_events, 0);
    }

    #[test]
    fn orphan_accept_is_counted_not_invented() {
        let events = vec![ev(0, 5, 1, EventKind::ScalarAccept { src: n(0) })];
        let set = stitch(&events, &TraceLoss::default());
        assert_eq!(set.journeys.len(), 0);
        assert_eq!(set.orphan_accepts, 1);
    }

    #[test]
    fn evicting_node_taints_its_journeys() {
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 1,
                },
            ),
            ev(1, 8, 1, EventKind::ScalarAccept { src: n(0) }),
            ev(
                2,
                10,
                2,
                EventKind::ScalarSend {
                    dst: n(3),
                    size_words: 1,
                },
            ),
            ev(3, 18, 3, EventKind::ScalarAccept { src: n(2) }),
        ];
        let loss = TraceLoss {
            evicted: vec![0, 0, 0, 5],
            sampled_out: vec![0, 0, 0, 0],
        };
        let set = stitch(&events, &loss);
        assert_eq!(set.journeys.len(), 2);
        assert!(!set.journeys[0].incomplete, "untouched flow stays clean");
        assert!(
            set.journeys[1].incomplete,
            "flow touching lossy node 3 flagged"
        );
    }

    #[test]
    fn unclosed_generation_is_wedged() {
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::DialogOpen {
                    peer: n(1),
                    dialog: 3,
                    window: 8,
                },
            ),
            ev(
                1,
                1,
                0,
                EventKind::BulkSend {
                    dst: n(1),
                    dialog: 3,
                    seq: 0,
                    exit: false,
                },
            ),
        ];
        let set = stitch(&events, &TraceLoss::default());
        assert_eq!(set.wedged_dialogs, vec![(0, 1, 3)]);
        assert_eq!(set.journeys[0].status, JourneyStatus::InFlight);
        assert!(set.journeys[0].incomplete);
    }
}
