//! Journey-enriched Perfetto export: layers reconstructed journey spans
//! on top of the standard Chrome trace so Perfetto renders each packet's
//! life as an async bar (launch → sender-visible retirement) on its
//! sender's track, with the latency decomposition in the span arguments.

use std::collections::BTreeMap;

use nifdy_trace::export::to_chrome_trace_with_loss;
use nifdy_trace::json::{parse, Json};
use nifdy_trace::{TraceEvent, TraceLoss};

use crate::stitch::JourneySet;

/// Renders the Chrome/Perfetto document with one async `journey` span per
/// reconstructed journey appended to the standard export. Span ids are
/// `j<src>.<dst>.<n>` (n = per-flow launch ordinal) so concurrent
/// journeys on different flows never collide.
pub fn enrich_chrome_trace(events: &[TraceEvent], loss: &TraceLoss, set: &JourneySet) -> String {
    let base = to_chrome_trace_with_loss(events, loss);
    let mut doc = match parse(&base) {
        Ok(doc) => doc,
        // The base exporter's output always parses; keep it usable even if
        // that ever regresses.
        Err(_) => return base,
    };

    let mut spans = Vec::new();
    let mut ordinals: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for j in &set.journeys {
        let n = ordinals.entry(j.flow()).or_default();
        let id = format!("j{}.{}.{n}", j.src, j.dst);
        *n += 1;
        // Spans need both endpoints; an in-flight journey has none yet.
        let Some(finish) = j.end.or(j.accept) else {
            continue;
        };
        let name = format!("{}_journey", j.kind.name());
        let mut args = vec![
            ("dst", Json::u64(j.dst as u64)),
            ("status", Json::str(j.status.name())),
            ("retransmits", Json::u64(u64::from(j.retransmits))),
            ("admission_wait", Json::u64(j.admission_wait)),
        ];
        if let Some(d) = j.decomposition() {
            args.push(("retx_penalty", Json::u64(d.retx_penalty)));
            args.push(("fabric_transit", Json::u64(d.fabric_transit)));
            args.push(("ack_turnaround", Json::u64(d.ack_turnaround)));
        }
        if j.incomplete {
            args.push(("incomplete", Json::Bool(true)));
        }
        spans.push(async_event(
            &name,
            "b",
            &id,
            j.first_send,
            j.src as u64,
            args,
        ));
        spans.push(async_event(
            &name,
            "e",
            &id,
            finish,
            j.src as u64,
            Vec::new(),
        ));
    }

    if let Json::Obj(map) = &mut doc {
        if let Some(Json::Arr(out)) = map.get_mut("traceEvents") {
            out.extend(spans);
        }
    }
    doc.render()
}

/// One async-span endpoint in the Chrome trace-event model (`ph` "b"/"e"
/// pair matched by category + id + name).
fn async_event(
    name: &str,
    ph: &str,
    id: &str,
    ts: u64,
    tid: u64,
    args: Vec<(&'static str, Json)>,
) -> Json {
    let mut map = BTreeMap::new();
    map.insert("name".to_string(), Json::str(name));
    map.insert("cat".to_string(), Json::str("journey"));
    map.insert("ph".to_string(), Json::str(ph));
    map.insert("id".to_string(), Json::str(id));
    map.insert("ts".to_string(), Json::u64(ts));
    map.insert("pid".to_string(), Json::u64(1));
    map.insert("tid".to_string(), Json::u64(tid));
    if !args.is_empty() {
        map.insert("args".to_string(), Json::obj(args));
    }
    Json::Obj(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stitch::stitch;
    use nifdy_sim::{Cycle, NodeId};
    use nifdy_trace::EventKind;

    fn ev(seq: u64, at: u64, node: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            at: Cycle::new(at),
            node: NodeId::new(node),
            kind,
        }
    }

    #[test]
    fn journey_spans_are_appended() {
        let n = NodeId::new;
        let events = vec![
            ev(
                0,
                10,
                0,
                EventKind::OptInsert {
                    dst: n(1),
                    occupancy: 1,
                },
            ),
            ev(
                1,
                10,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 8,
                },
            ),
            ev(2, 26, 1, EventKind::ScalarAccept { src: n(0) }),
            ev(
                3,
                40,
                0,
                EventKind::OptClear {
                    dst: n(1),
                    occupancy: 0,
                },
            ),
        ];
        let loss = TraceLoss::default();
        let set = stitch(&events, &loss);
        let doc = enrich_chrome_trace(&events, &loss, &set);
        assert!(doc.contains("\"scalar_journey\""));
        assert!(doc.contains("\"j0.1.0\""));
        assert!(doc.contains("\"cat\":\"journey\""));
        // Both endpoints of the async span are present.
        let parsed = parse(&doc).unwrap();
        let trace_events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let span_phases: Vec<&str> = trace_events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("journey"))
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(span_phases, ["b", "e"]);
        // Decomposition rides in the begin-span args.
        assert!(doc.contains("\"fabric_transit\":16"));
        assert!(doc.contains("\"ack_turnaround\":14"));
    }

    #[test]
    fn enrichment_is_deterministic() {
        let n = NodeId::new;
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 1,
                },
            ),
            ev(1, 6, 1, EventKind::ScalarAccept { src: n(0) }),
        ];
        let loss = TraceLoss::default();
        let set = stitch(&events, &loss);
        let a = enrich_chrome_trace(&events, &loss, &set);
        let b = enrich_chrome_trace(&events, &loss, &stitch(&events, &loss));
        assert_eq!(a, b);
    }
}
