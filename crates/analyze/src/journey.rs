//! The per-packet journey model: one [`Journey`] per data packet the
//! sender launched, stitched from trace events by
//! [`crate::stitch`](fn@crate::stitch::stitch).
//!
//! A journey's timeline is four ordered marks, each a cycle timestamp from
//! the trace stream:
//!
//! ```text
//! first_send ──▶ last_send ──▶ accept ──▶ end
//!    launch      final (re)tx   receiver    sender sees ack
//!                before accept  delivery    (OPT clear / window advance)
//! ```
//!
//! The latency decomposition falls out of adjacent differences, so the
//! parts sum to the end-to-end latency *exactly* (no estimation):
//!
//! * **retx penalty** `last_send − first_send`: time lost to copies that
//!   never arrived (zero when the first copy got through),
//! * **fabric transit** `accept − last_send`: flight time of the copy that
//!   was actually delivered,
//! * **ack turnaround** `end − accept`: delivery until the sender could
//!   observe it (retire the OPT entry or advance the window).
//!
//! Admission wait — how long the packet queued *behind its flow* before
//! launch — is reported separately and is not part of the end-to-end sum;
//! see [`Journey::admission_wait`].

/// What kind of packet the journey tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyKind {
    /// A scalar data packet (OPT-tracked when acked; see
    /// [`Journey::has_opt`]).
    Scalar,
    /// One sequence of a bulk dialog.
    Bulk {
        /// Sender-side dialog slot the packet belonged to.
        dialog: u8,
        /// Absolute sequence number within the dialog generation (the wire
        /// carries only `abs_seq mod 256`).
        abs_seq: u64,
    },
}

impl JourneyKind {
    /// Stable lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            JourneyKind::Scalar => "scalar",
            JourneyKind::Bulk { .. } => "bulk",
        }
    }
}

/// Terminal state of a journey at the end of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyStatus {
    /// The packet was delivered (and, when acknowledgement applies, the
    /// sender observed the ack).
    Completed,
    /// The sender gave up: retry budget exhausted (scalar
    /// `DeliveryFail`) or the owning dialog was torn down.
    Failed,
    /// Neither completed nor failed when the trace ended.
    InFlight,
}

impl JourneyStatus {
    /// Stable lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            JourneyStatus::Completed => "completed",
            JourneyStatus::Failed => "failed",
            JourneyStatus::InFlight => "in_flight",
        }
    }
}

/// The exactly-summing latency decomposition of a completed journey.
/// All fields are in cycles; see the module docs for definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Decomposition {
    /// `last_send − first_send`.
    pub retx_penalty: u64,
    /// `accept − last_send`.
    pub fabric_transit: u64,
    /// `end − accept` (zero when the journey needs no sender-visible ack).
    pub ack_turnaround: u64,
}

impl Decomposition {
    /// End-to-end latency: the sum of the three parts, by construction.
    pub fn end_to_end(&self) -> u64 {
        self.retx_penalty + self.fabric_transit + self.ack_turnaround
    }
}

/// One reconstructed packet lifetime.
#[derive(Debug, Clone)]
pub struct Journey {
    /// Sending node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Scalar or bulk, with bulk identity.
    pub kind: JourneyKind,
    /// Scalar only: the packet requested an ack and occupies an OPT slot
    /// (journeys without it complete at delivery, with no ack turnaround).
    pub has_opt: bool,
    /// Cycle of the original launch.
    pub first_send: u64,
    /// Cycle of the last (re)transmission observed *before* delivery.
    pub last_send: u64,
    /// Cycle the receiver streamed the packet into its arrivals FIFO
    /// (`ScalarAccept` / `BulkAccept`), if observed.
    pub accept: Option<u64>,
    /// Cycle the sender retired the packet (OPT clear, covering window
    /// advance, or failure), if observed.
    pub end: Option<u64>,
    /// Retransmission events attributed to this journey.
    pub retransmits: u32,
    /// Terminal state at end of trace.
    pub status: JourneyStatus,
    /// True when the reconstruction is known or suspected partial: the
    /// recorder evicted events on a node this journey touches, a sequence
    /// residue failed to line up, or a lifecycle mark is missing. An
    /// incomplete journey is surfaced, never silently folded into the
    /// latency tables.
    pub incomplete: bool,
    /// Cycles the packet waited behind its own flow before launch (gap to
    /// the predecessor journey's retirement for serialized scalars, to the
    /// predecessor's launch for windowed bulk). Zero for flow-first
    /// journeys. Reported separately from the end-to-end decomposition.
    pub admission_wait: u64,
}

impl Journey {
    pub(crate) fn new(src: usize, dst: usize, kind: JourneyKind, at: u64) -> Self {
        Journey {
            src,
            dst,
            kind,
            has_opt: false,
            first_send: at,
            last_send: at,
            accept: None,
            end: None,
            retransmits: 0,
            status: JourneyStatus::InFlight,
            incomplete: false,
            admission_wait: 0,
        }
    }

    /// The flow this journey belongs to.
    pub fn flow(&self) -> (usize, usize) {
        (self.src, self.dst)
    }

    /// Cycle at which the journey's clock stops for latency purposes: the
    /// sender-visible end when one exists, otherwise the delivery point.
    pub fn finish(&self) -> Option<u64> {
        match self.status {
            JourneyStatus::Completed => self.end.or(self.accept),
            _ => None,
        }
    }

    /// End-to-end latency in cycles (completed journeys only).
    pub fn end_to_end(&self) -> Option<u64> {
        Some(self.finish()?.saturating_sub(self.first_send))
    }

    /// The exactly-summing decomposition (completed journeys with an
    /// observed delivery point only).
    pub fn decomposition(&self) -> Option<Decomposition> {
        if self.status != JourneyStatus::Completed {
            return None;
        }
        let accept = self.accept?;
        Some(Decomposition {
            retx_penalty: self.last_send.saturating_sub(self.first_send),
            fabric_transit: accept.saturating_sub(self.last_send),
            ack_turnaround: self.end.map(|e| e.saturating_sub(accept)).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_sums_to_end_to_end() {
        let mut j = Journey::new(0, 1, JourneyKind::Scalar, 10);
        j.has_opt = true;
        j.last_send = 74; // one retransmission at cycle 74
        j.accept = Some(90);
        j.end = Some(103);
        j.retransmits = 1;
        j.status = JourneyStatus::Completed;
        let d = j.decomposition().unwrap();
        assert_eq!(d.retx_penalty, 64);
        assert_eq!(d.fabric_transit, 16);
        assert_eq!(d.ack_turnaround, 13);
        assert_eq!(Some(d.end_to_end()), j.end_to_end());
    }

    #[test]
    fn no_ack_journey_ends_at_accept() {
        let mut j = Journey::new(2, 3, JourneyKind::Scalar, 5);
        j.accept = Some(12);
        j.status = JourneyStatus::Completed;
        assert_eq!(j.end_to_end(), Some(7));
        let d = j.decomposition().unwrap();
        assert_eq!(d.ack_turnaround, 0);
        assert_eq!(d.end_to_end(), 7);
    }

    #[test]
    fn failed_journey_has_no_latency() {
        let mut j = Journey::new(0, 1, JourneyKind::Scalar, 0);
        j.status = JourneyStatus::Failed;
        assert_eq!(j.end_to_end(), None);
        assert!(j.decomposition().is_none());
    }
}
