//! The analysis report: one call folds a trace stream into journeys,
//! per-flow latency tables, invariant verdicts, and anomalies, and renders
//! the result as deterministic JSON or a human table.
//!
//! Determinism: the report is a pure function of the event stream, the
//! loss accounting, and the external counters. All aggregation uses
//! ordered containers and the JSON layer renders `BTreeMap`s, so the same
//! inputs produce byte-identical output — repeated runs of a seeded
//! experiment diff clean.

use nifdy_trace::json::Json;
use nifdy_trace::{TraceEvent, TraceLoss};

use crate::anomaly::{self, Anomaly, AnomalyConfig};
use crate::decompose::{self, FlowStats, PercentileSummary};
use crate::invariants::{self, ExternalCounts, Invariant, InvariantStatus};
use crate::journey::JourneyStatus;
use crate::stitch::{self, JourneySet};

/// The complete analysis of one trace stream.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The reconstructed journeys and stream-level counters.
    pub set: JourneySet,
    /// Per-flow latency decomposition tables.
    pub flows: Vec<FlowStats>,
    /// Conservation-check verdicts.
    pub invariants: Vec<Invariant>,
    /// Flagged patterns.
    pub anomalies: Vec<Anomaly>,
}

/// Runs the full pipeline: stitch → aggregate → check → detect.
pub fn analyze(
    events: &[TraceEvent],
    loss: &TraceLoss,
    ext: &ExternalCounts,
    cfg: &AnomalyConfig,
) -> AnalysisReport {
    let set = stitch::stitch(events, loss);
    let flows = decompose::per_flow(&set);
    let invariants = invariants::check(&set, &flows, ext);
    let anomalies = anomaly::detect(events, &set, cfg);
    AnalysisReport {
        set,
        flows,
        invariants,
        anomalies,
    }
}

impl AnalysisReport {
    /// True when no conservation invariant failed (skips are fine).
    pub fn ok(&self) -> bool {
        invariants::all_green(&self.invariants)
    }

    /// The deterministic JSON form (stable key order, no wall-clock).
    pub fn to_json(&self) -> Json {
        let set = &self.set;
        Json::obj([
            (
                "journeys",
                Json::obj([
                    ("total", Json::u64(set.journeys.len() as u64)),
                    (
                        "completed",
                        Json::u64(set.with_status(JourneyStatus::Completed)),
                    ),
                    ("failed", Json::u64(set.with_status(JourneyStatus::Failed))),
                    (
                        "in_flight",
                        Json::u64(set.with_status(JourneyStatus::InFlight)),
                    ),
                    ("accepted", Json::u64(set.accepted())),
                    ("incomplete", Json::u64(set.incomplete())),
                    ("retransmits", Json::u64(set.journey_retransmits())),
                    ("orphan_accepts", Json::u64(set.orphan_accepts)),
                    ("unmatched_events", Json::u64(set.unmatched_events)),
                    ("acked_without_accept", Json::u64(set.acked_without_accept)),
                ]),
            ),
            (
                "events",
                Json::obj([
                    ("retransmit", Json::u64(set.retx_events)),
                    ("delivery_fail", Json::u64(set.delivery_fail_events)),
                    ("fabric_drop", Json::u64(set.drop_events)),
                    ("wire_fault", Json::u64(set.wire_fault_events)),
                ]),
            ),
            (
                "trace_loss",
                Json::obj([
                    (
                        "evicted",
                        Json::Arr(set.loss.evicted.iter().map(|&v| Json::u64(v)).collect()),
                    ),
                    ("evicted_total", Json::u64(set.loss.evicted_total())),
                    (
                        "sampled_out",
                        Json::Arr(set.loss.sampled_out.iter().map(|&v| Json::u64(v)).collect()),
                    ),
                    ("sampled_out_total", Json::u64(set.loss.sampled_out_total())),
                ]),
            ),
            (
                "flows",
                Json::Arr(self.flows.iter().map(flow_json).collect()),
            ),
            (
                "invariants",
                Json::Arr(
                    self.invariants
                        .iter()
                        .map(|i| {
                            Json::obj([
                                ("name", Json::str(i.name)),
                                ("status", Json::str(i.status.name())),
                                ("detail", Json::str(i.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "anomalies",
                Json::Arr(
                    self.anomalies
                        .iter()
                        .map(|a| {
                            Json::obj([
                                ("kind", Json::str(a.kind)),
                                (
                                    "node",
                                    a.node.map(|n| Json::u64(n as u64)).unwrap_or(Json::Null),
                                ),
                                (
                                    "flow",
                                    a.flow
                                        .map(|(s, d)| {
                                            Json::Arr(vec![
                                                Json::u64(s as u64),
                                                Json::u64(d as u64),
                                            ])
                                        })
                                        .unwrap_or(Json::Null),
                                ),
                                ("detail", Json::str(a.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A fixed-width human summary: per-flow decomposition table followed
    /// by invariant verdicts and anomalies.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "journeys: {} total, {} completed, {} failed, {} in flight, {} incomplete\n",
            self.set.journeys.len(),
            self.set.with_status(JourneyStatus::Completed),
            self.set.with_status(JourneyStatus::Failed),
            self.set.with_status(JourneyStatus::InFlight),
            self.set.incomplete(),
        ));
        out.push_str(&format!(
            "trace loss: {} evicted, {} sampled out\n\n",
            self.set.loss.evicted_total(),
            self.set.loss.sampled_out_total(),
        ));
        out.push_str(&format!(
            "{:<9} {:>5} {:>5} {:>4} {:>5} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8} {:>8}\n",
            "flow",
            "n",
            "done",
            "fail",
            "retx",
            "e2e p50",
            "e2e p99",
            "e2e max",
            "admit",
            "retx pen",
            "transit",
            "ack",
        ));
        for f in &self.flows {
            out.push_str(&format!(
                "{:<9} {:>5} {:>5} {:>4} {:>5} | {:>7} {:>7} {:>7} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}\n",
                format!("{}->{}", f.flow.0, f.flow.1),
                f.journeys,
                f.completed,
                f.failed,
                f.retransmits,
                f.e2e.p50,
                f.e2e.p99,
                f.e2e.max,
                f.admission.mean,
                f.retx_penalty.mean,
                f.transit.mean,
                f.ack.mean,
            ));
        }
        out.push('\n');
        for i in &self.invariants {
            out.push_str(&format!(
                "[{:^7}] {:<28} {}\n",
                i.status.name(),
                i.name,
                i.detail
            ));
        }
        if self.anomalies.is_empty() {
            out.push_str("\nno anomalies\n");
        } else {
            out.push('\n');
            for a in &self.anomalies {
                let loc = match (a.node, a.flow) {
                    (_, Some((s, d))) => format!("flow {s}->{d}"),
                    (Some(n), None) => format!("node {n}"),
                    (None, None) => "global".to_string(),
                };
                out.push_str(&format!("anomaly {:<20} {loc}: {}\n", a.kind, a.detail));
            }
        }
        out
    }
}

/// JSON form of one per-flow row.
fn flow_json(f: &FlowStats) -> Json {
    Json::obj([
        ("src", Json::u64(f.flow.0 as u64)),
        ("dst", Json::u64(f.flow.1 as u64)),
        ("journeys", Json::u64(f.journeys)),
        ("completed", Json::u64(f.completed)),
        ("failed", Json::u64(f.failed)),
        ("in_flight", Json::u64(f.in_flight)),
        ("incomplete", Json::u64(f.incomplete)),
        ("retransmits", Json::u64(f.retransmits)),
        ("e2e", summary_json(&f.e2e)),
        ("admission", summary_json(&f.admission)),
        ("retx_penalty", summary_json(&f.retx_penalty)),
        ("transit", summary_json(&f.transit)),
        ("ack", summary_json(&f.ack)),
    ])
}

/// JSON form of one percentile summary.
fn summary_json(s: &PercentileSummary) -> Json {
    Json::obj([
        ("p50", Json::u64(s.p50)),
        ("p90", Json::u64(s.p90)),
        ("p99", Json::u64(s.p99)),
        ("max", Json::u64(s.max)),
        ("mean", Json::Num(s.mean)),
    ])
}

/// Convenience: verdict lookup by name (used by tests and the harness).
pub fn invariant_status(report: &AnalysisReport, name: &str) -> Option<InvariantStatus> {
    report
        .invariants
        .iter()
        .find(|i| i.name == name)
        .map(|i| i.status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_sim::{Cycle, NodeId};
    use nifdy_trace::EventKind;

    fn lifecycle_events() -> Vec<TraceEvent> {
        let n = NodeId::new;
        [
            (
                0u64,
                10u64,
                0usize,
                EventKind::OptInsert {
                    dst: n(1),
                    occupancy: 1,
                },
            ),
            (
                1,
                10,
                0,
                EventKind::ScalarSend {
                    dst: n(1),
                    size_words: 8,
                },
            ),
            (2, 26, 1, EventKind::ScalarAccept { src: n(0) }),
            (
                3,
                40,
                0,
                EventKind::OptClear {
                    dst: n(1),
                    occupancy: 0,
                },
            ),
        ]
        .into_iter()
        .map(|(seq, at, node, kind)| TraceEvent {
            seq,
            at: Cycle::new(at),
            node: NodeId::new(node),
            kind,
        })
        .collect()
    }

    #[test]
    fn report_is_deterministic() {
        let events = lifecycle_events();
        let ext = ExternalCounts {
            delivered: Some(1),
            ..ExternalCounts::default()
        };
        let a = analyze(
            &events,
            &TraceLoss::default(),
            &ext,
            &AnomalyConfig::default(),
        );
        let b = analyze(
            &events,
            &TraceLoss::default(),
            &ext,
            &AnomalyConfig::default(),
        );
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert_eq!(a.table(), b.table());
        assert!(a.ok());
    }

    #[test]
    fn json_shape_has_all_sections() {
        let events = lifecycle_events();
        let report = analyze(
            &events,
            &TraceLoss::default(),
            &ExternalCounts::default(),
            &AnomalyConfig::default(),
        );
        let json = report.to_json();
        for key in [
            "journeys",
            "events",
            "trace_loss",
            "flows",
            "invariants",
            "anomalies",
        ] {
            assert!(json.get(key).is_some(), "missing section {key}");
        }
        assert_eq!(
            json.get("journeys")
                .and_then(|j| j.get("completed"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            invariant_status(&report, "accepts_have_journeys"),
            Some(InvariantStatus::Pass)
        );
    }

    #[test]
    fn table_mentions_flows_and_verdicts() {
        let events = lifecycle_events();
        let report = analyze(
            &events,
            &TraceLoss::default(),
            &ExternalCounts::default(),
            &AnomalyConfig::default(),
        );
        let table = report.table();
        assert!(table.contains("0->1"));
        assert!(table.contains("journey_accounting"));
        assert!(table.contains("no anomalies"));
    }
}
