//! # nifdy-analyze — offline journey analysis for NIFDY traces
//!
//! The trace layer records *what happened*; this crate reconstructs *what
//! it meant*. It consumes the merged event stream a recorder produced —
//! from the simulated fabric or the byte wire, the vocabulary is shared —
//! and stitches per-packet **journeys**: the scalar lifecycle
//! (`ScalarSend → OptInsert → ScalarAccept → OptClear`, with retransmit
//! loops) and the bulk lifecycle (dialog open → per-sequence send/accept
//! → window advance → close), correlated without any packet id on the
//! wire by exploiting the protocol's own ordering guarantees (see
//! [`stitch`](mod@stitch)).
//!
//! On top of the journeys it computes:
//!
//! * a **latency decomposition** that sums *exactly* to the end-to-end
//!   latency — retransmission penalty, fabric transit, ack turnaround —
//!   aggregated into per-flow percentile tables ([`decompose`]),
//! * **conservation invariants** cross-checking the reconstruction
//!   against ground-truth NIC/fabric/wire counters, three-valued so trace
//!   loss skips a check rather than faking a pass ([`invariants`]),
//! * **anomaly detectors** for retransmission storms, wedged dialogs,
//!   OPT thrash, heartbeat gaps, and incomplete reconstructions
//!   ([`anomaly`]),
//! * a deterministic JSON + human-table **report** ([`report`]) and a
//!   journey-span **Perfetto enrichment** ([`perfetto`]).
//!
//! Everything is a pure function of its inputs: ordered containers
//! throughout, no clocks, no randomness — identical runs yield
//! byte-identical reports (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod decompose;
pub mod invariants;
pub mod journey;
pub mod perfetto;
pub mod report;
pub mod stitch;

pub use anomaly::{Anomaly, AnomalyConfig};
pub use decompose::{FlowStats, PercentileSummary};
pub use invariants::{ExternalCounts, Invariant, InvariantStatus};
pub use journey::{Decomposition, Journey, JourneyKind, JourneyStatus};
pub use perfetto::enrich_chrome_trace;
pub use report::{analyze, AnalysisReport};
pub use stitch::{stitch, JourneySet};
