//! Anomaly detectors: patterns that are legal protocol behaviour but
//! deserve operator eyes — retransmission storms, wedged dialogs, OPT
//! eligibility thrash, heartbeat gaps, and incomplete reconstructions.
//!
//! Detectors never fail a run by themselves (that is the invariants' job);
//! they annotate the report so a human can find trouble without reading
//! the raw stream.

use std::collections::BTreeMap;

use nifdy_trace::{EventKind, TraceEvent};

use crate::journey::JourneyStatus;
use crate::stitch::JourneySet;

/// Detector thresholds. The defaults suit the repo's experiment scales;
/// tighten or relax per run.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// A single journey retransmitted at least this many times is a storm.
    pub retx_storm: u32,
    /// A node stalling eligibility more than this many times is thrashing
    /// its OPT.
    pub opt_thrash: u64,
    /// A heartbeat gap larger than `factor × median gap` (with at least 3
    /// beats observed) is flagged.
    pub heartbeat_gap_factor: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            retx_storm: 5,
            opt_thrash: 256,
            heartbeat_gap_factor: 8,
        }
    }
}

/// One flagged pattern.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Stable snake_case detector name.
    pub kind: &'static str,
    /// Node the anomaly is attributed to, when node-scoped.
    pub node: Option<usize>,
    /// Flow the anomaly is attributed to, when flow-scoped.
    pub flow: Option<(usize, usize)>,
    /// Human-readable account.
    pub detail: String,
}

/// Runs every detector over the stream and the reconstruction.
pub fn detect(events: &[TraceEvent], set: &JourneySet, cfg: &AnomalyConfig) -> Vec<Anomaly> {
    let mut out = Vec::new();

    // Retransmission storms: per journey.
    for j in &set.journeys {
        if j.retransmits >= cfg.retx_storm {
            out.push(Anomaly {
                kind: "retx_storm",
                node: Some(j.src),
                flow: Some(j.flow()),
                detail: format!(
                    "{} journey launched at cycle {} retried {} times (status {})",
                    j.kind.name(),
                    j.first_send,
                    j.retransmits,
                    j.status.name()
                ),
            });
        }
    }

    // Wedged dialogs: sender generations never closed.
    for &(src, dst, dialog) in &set.wedged_dialogs {
        out.push(Anomaly {
            kind: "wedged_dialog",
            node: Some(src),
            flow: Some((src, dst)),
            detail: format!("dialog {dialog} on flow {src}->{dst} never closed"),
        });
    }

    // OPT thrash: eligibility stalls per node.
    let mut stalls: BTreeMap<usize, u64> = BTreeMap::new();
    for ev in events {
        if matches!(ev.kind, EventKind::EligStall { .. }) {
            *stalls.entry(ev.node.index()).or_default() += 1;
        }
    }
    for (node, count) in stalls {
        if count > cfg.opt_thrash {
            out.push(Anomaly {
                kind: "opt_thrash",
                node: Some(node),
                flow: None,
                detail: format!("{count} eligibility stalls (threshold {})", cfg.opt_thrash),
            });
        }
    }

    // Heartbeat gaps: per (node, peer) outbound beat cadence.
    let mut beats: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
    for ev in events {
        if let EventKind::Heartbeat {
            peer, sent: true, ..
        } = ev.kind
        {
            beats
                .entry((ev.node.index(), peer.index()))
                .or_default()
                .push(ev.at.as_u64());
        }
    }
    for ((node, peer), times) in beats {
        if times.len() < 3 {
            continue;
        }
        let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().expect("non-empty");
        if median > 0 && max > cfg.heartbeat_gap_factor * median {
            out.push(Anomaly {
                kind: "heartbeat_gap",
                node: Some(node),
                flow: Some((node, peer)),
                detail: format!(
                    "max beat gap {max} vs median {median} (factor {})",
                    cfg.heartbeat_gap_factor
                ),
            });
        }
    }

    // Incomplete reconstructions, summarized per flow.
    let mut incomplete: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    for j in &set.journeys {
        let e = incomplete.entry(j.flow()).or_default();
        if j.incomplete {
            e.0 += 1;
        }
        if j.status == JourneyStatus::InFlight {
            e.1 += 1;
        }
    }
    for ((src, dst), (inc, inflight)) in incomplete {
        if inc > 0 || inflight > 0 {
            out.push(Anomaly {
                kind: "incomplete_journeys",
                node: None,
                flow: Some((src, dst)),
                detail: format!("{inc} incomplete, {inflight} still in flight at trace end"),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journey::{Journey, JourneyKind};
    use nifdy_sim::{Cycle, NodeId};

    #[test]
    fn storm_and_wedge_are_flagged() {
        let mut set = JourneySet::default();
        let mut j = Journey::new(0, 1, JourneyKind::Scalar, 0);
        j.retransmits = 6;
        j.status = JourneyStatus::Failed;
        set.journeys.push(j);
        set.wedged_dialogs.push((2, 3, 1));
        let anomalies = detect(&[], &set, &AnomalyConfig::default());
        assert!(anomalies.iter().any(|a| a.kind == "retx_storm"));
        assert!(anomalies.iter().any(|a| a.kind == "wedged_dialog"));
    }

    #[test]
    fn heartbeat_gap_detected() {
        let mut events = Vec::new();
        for (i, at) in [0u64, 100, 200, 300, 3000].iter().enumerate() {
            events.push(TraceEvent {
                seq: i as u64,
                at: Cycle::new(*at),
                node: NodeId::new(0),
                kind: EventKind::Heartbeat {
                    peer: NodeId::new(1),
                    epoch: 1,
                    sent: true,
                },
            });
        }
        let set = JourneySet::default();
        let anomalies = detect(&events, &set, &AnomalyConfig::default());
        assert!(anomalies.iter().any(|a| a.kind == "heartbeat_gap"));
    }

    #[test]
    fn quiet_trace_has_no_anomalies() {
        let mut set = JourneySet::default();
        let mut j = Journey::new(0, 1, JourneyKind::Scalar, 0);
        j.accept = Some(5);
        j.end = Some(8);
        j.has_opt = true;
        j.status = JourneyStatus::Completed;
        set.journeys.push(j);
        assert!(detect(&[], &set, &AnomalyConfig::default()).is_empty());
    }
}
