//! Cross-crate integration tests: full driver stacks (workload → processor
//! → NIC → fabric) on every topology and every interface model.

use nifdy_harness::NetworkKind;
use nifdy_net::Fabric;
use nifdy_traffic::{
    CShiftConfig, Driver, Em3dParams, NicChoice, ScanConfig, SoftwareModel, SyntheticConfig,
};

fn choices(kind: NetworkKind) -> [NicChoice; 3] {
    let preset = kind.nifdy_preset();
    [
        NicChoice::Plain,
        NicChoice::BuffersOnly(preset.clone()),
        NicChoice::Nifdy(preset),
    ]
}

#[test]
fn synthetic_heavy_delivers_on_every_network_and_interface() {
    for kind in NetworkKind::ALL {
        for choice in choices(kind) {
            let fab = Fabric::new(kind.topology(64, 1), kind.fabric_config(1));
            let wls = SyntheticConfig::heavy(1).build(64);
            let mut d =
                Driver::new(fab, &choice, SoftwareModel::synthetic(), wls).expect("driver builds");
            d.run_cycles(8_000);
            assert!(
                d.packets_received() > 100,
                "{} / {} delivered only {}",
                kind.label(),
                choice.label(),
                d.packets_received()
            );
        }
    }
}

#[test]
fn cshift_completes_on_every_network() {
    for kind in NetworkKind::ALL {
        let sw = SoftwareModel::cm5_library(false);
        let nodes = 64;
        let cfg = CShiftConfig::new(12, sw);
        let fab = Fabric::new(kind.topology(nodes, 2), kind.fabric_config(2));
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(kind.nifdy_preset()),
            sw,
            cfg.build(nodes),
        )
        .expect("driver builds");
        assert!(
            d.run_until_quiet(30_000_000),
            "{} never finished C-shift",
            kind.label()
        );
        let expected = cfg.packets_per_node(nodes) * nodes as u64;
        assert_eq!(
            d.packets_received(),
            expected,
            "{} lost packets",
            kind.label()
        );
    }
}

#[test]
fn em3d_conserves_every_value_update() {
    let kind = NetworkKind::Torus2D;
    let mut params = Em3dParams::less_communication(3);
    params.n_nodes = 40;
    params.iters = 2;
    let sw = SoftwareModel::cm5_library(false);
    let plan = nifdy_traffic::Em3dPlan::generate(params, 64);
    let words_per_iter: u64 = plan
        .sends
        .iter()
        .flat_map(|v| v.iter().map(|(_, w)| u64::from(*w)))
        .sum();
    let fab = Fabric::new(kind.topology(64, 3), kind.fabric_config(3));
    let mut d = Driver::new(
        fab,
        &NicChoice::Nifdy(kind.nifdy_preset()),
        sw,
        params.build(64, sw),
    )
    .expect("driver builds");
    assert!(d.run_until_quiet(50_000_000), "EM3D never finished");
    assert_eq!(
        d.user_words_received(),
        words_per_iter * u64::from(params.iters),
        "value updates lost or duplicated"
    );
}

#[test]
fn radix_scan_pipeline_finishes_with_and_without_nifdy() {
    let kind = NetworkKind::Cm5;
    let sw = SoftwareModel::cm5_library(false);
    let mut cfg = ScanConfig::radix8(sw);
    cfg.buckets = 32;
    for choice in [NicChoice::Plain, NicChoice::Nifdy(kind.nifdy_preset())] {
        let fab = Fabric::new(kind.topology(64, 4), kind.fabric_config(4));
        let mut d = Driver::new(fab, &choice, sw, cfg.build(64)).expect("driver builds");
        assert!(
            d.run_until_quiet(50_000_000),
            "scan stuck with {}",
            choice.label()
        );
        // 63 forwarding stages times 32 buckets.
        let sent: u64 = d.processors().iter().map(|p| p.stats().sent.get()).sum();
        assert_eq!(sent, 63 * 32, "{}", choice.label());
    }
}

#[test]
fn nifdy_survives_the_lossy_fabric_under_a_real_workload() {
    let kind = NetworkKind::Mesh2D;
    let sw = SoftwareModel::cm5_library(false);
    let cfg = CShiftConfig::new(10, sw);
    let fab = Fabric::new(
        kind.topology(64, 5),
        kind.fabric_config(5).with_drop_prob(0.05),
    );
    let nic = kind.nifdy_preset().with_retx_timeout(3_000);
    let mut d = Driver::new(fab, &NicChoice::Nifdy(nic), sw, cfg.build(64))
        .expect("driver builds")
        .with_stall_watchdog(500_000);
    assert!(
        d.run_until_quiet(80_000_000),
        "lossy C-shift never finished"
    );
    let expected = cfg.packets_per_node(64) * 64;
    assert_eq!(
        d.packets_received(),
        expected,
        "loss leaked to the workload"
    );
}

#[test]
fn adaptive_rto_survives_the_fault_plane_under_a_real_workload() {
    // The full fault plane on a real workload: bursty loss that also takes
    // out acks, plus an independent ack-lane lottery, recovered by the
    // adaptive RTO. The stall watchdog turns any livelock into a panic
    // instead of a silent timeout.
    use nifdy_net::{FaultConfig, GilbertElliott};

    let kind = NetworkKind::Mesh2D;
    let sw = SoftwareModel::cm5_library(false);
    let cfg = CShiftConfig::new(10, sw);
    let fault = FaultConfig::default()
        .with_burst(GilbertElliott::with_mean_loss(0.05))
        .with_ack_drop_prob(0.02);
    let fab = Fabric::new(
        kind.topology(64, 5),
        kind.fabric_config(5).with_fault(fault),
    );
    let nic = kind
        .nifdy_preset()
        .with_retx_timeout(3_000)
        .with_adaptive_rto(true);
    let mut d = Driver::new(fab, &NicChoice::Nifdy(nic), sw, cfg.build(64))
        .expect("driver builds")
        .with_stall_watchdog(500_000);
    assert!(
        d.run_until_quiet(80_000_000),
        "bursty C-shift never finished"
    );
    let expected = cfg.packets_per_node(64) * 64;
    assert_eq!(
        d.packets_received(),
        expected,
        "loss leaked to the workload"
    );
    assert!(
        d.delivery_failures().is_empty(),
        "no budget configured: nothing may be abandoned"
    );
    let dropped: u64 = d.fabric().stats().dropped.get();
    assert!(dropped > 0, "the fault plane must actually have fired");
}

#[test]
fn deterministic_runs_are_bit_identical() {
    let run = || {
        let kind = NetworkKind::Multibutterfly;
        let fab = Fabric::new(kind.topology(64, 9), kind.fabric_config(9));
        let wls = SyntheticConfig::light(9).build(64);
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(kind.nifdy_preset()),
            SoftwareModel::synthetic(),
            wls,
        )
        .expect("driver builds");
        d.run_cycles(15_000);
        (d.packets_received(), d.user_words_received())
    };
    assert_eq!(run(), run(), "same seed must give the same simulation");
}

#[test]
fn total_buffer_budget_matches_between_nifdy_and_buffers_only() {
    for kind in NetworkKind::ALL {
        let preset = kind.nifdy_preset();
        let budget = preset.total_buffers();
        let built = NicChoice::BuffersOnly(preset).build(4);
        // The buffered baseline exposes no capacity getters via the trait;
        // the invariant is enforced at construction (see BufferedNic::new),
        // so here we just confirm construction succeeds for every preset.
        assert_eq!(built.len(), 4);
        assert!(budget >= 2, "{} budget degenerate", kind.label());
    }
}

#[test]
fn nifdy_routes_around_fat_tree_link_faults() {
    // §1: "faults in the network may restrict the available bandwidth" —
    // kill a quarter of the up links at the leaf level; every transfer must
    // still complete, just more slowly than on the healthy tree.
    use nifdy_net::topology::FatTree;
    use nifdy_net::SwitchingPolicy;

    fn run(dead: bool) -> (bool, u64) {
        let mut topo = FatTree::new(64);
        if dead {
            topo = topo.with_dead_up_links((0u32..16).map(|w| (0u8, w, (w % 4) as u8)));
        }
        let fab = Fabric::new(
            Box::new(topo),
            nifdy_net::FabricConfig::default()
                .with_policy(SwitchingPolicy::CutThrough)
                .with_vc_buf_flits(8),
        );
        let sw = SoftwareModel::cm5_library(false);
        let cfg = CShiftConfig::new(12, sw);
        let mut d = Driver::new(
            fab,
            &NicChoice::Nifdy(NetworkKind::FatTree.nifdy_preset()),
            sw,
            cfg.build(64),
        )
        .expect("driver builds");
        let done = d.run_until_quiet(30_000_000);
        (done, d.fabric().now().as_u64())
    }
    let (healthy_done, healthy_t) = run(false);
    let (faulty_done, faulty_t) = run(true);
    assert!(healthy_done && faulty_done, "faults must not lose packets");
    // This light load is latency- not bandwidth-bound, so the slowdown is
    // small; the essential property is lossless completion in the same
    // regime (no timeout, no pathological degradation).
    assert!(
        faulty_t as f64 >= 0.9 * healthy_t as f64 && faulty_t < 4 * healthy_t,
        "degraded tree out of regime: {faulty_t} vs {healthy_t}"
    );
}
