//! The paper's qualitative claims, asserted at smoke scale. These are the
//! *shape* checks of EXPERIMENTS.md: who wins, roughly by how much, and
//! where NIFDY is supposed to be neutral.

use nifdy_harness::{fig23, fig5, fig6, fig9, table3, Jobs, NetworkKind, Scale};
use nifdy_traffic::NicChoice;

/// "Our results show that it delivers more packets than the same network
/// without NIFDY" — allow a small tolerance at smoke scale.
#[test]
fn heavy_traffic_nifdy_is_at_least_competitive_everywhere() {
    let (_, points) = fig23::run(true, Scale::Smoke, 1, Jobs::serial());
    for kind in NetworkKind::ALL {
        let get = |cfg: &str| {
            points
                .iter()
                .find(|p| p.network == kind.label() && p.config == cfg)
                .expect("cell present")
                .packets
        };
        let (none, nifdy) = (get("none"), get("nifdy"));
        assert!(
            nifdy as f64 >= 0.93 * none as f64,
            "{}: nifdy {} vs none {}",
            kind.label(),
            nifdy,
            none
        );
    }
}

/// "The utility of NIFDY increases as a network's bisection bandwidth
/// decreases": the CM-5 tree (lowest bisection per node) should gain more
/// from NIFDY under light traffic than the full fat tree. Smoke-scale
/// windows are too short for this ratio-of-ratios to settle, so the two
/// networks in question run at quick scale (both cells of one network
/// share a seed, as in the figure).
#[test]
fn light_traffic_gain_is_largest_on_low_bisection_networks() {
    let ratio = |kind: NetworkKind| {
        let none = fig23::run_cell(kind, &NicChoice::Plain, false, Scale::Quick, 1);
        let nifdy = fig23::run_cell(
            kind,
            &NicChoice::Nifdy(kind.nifdy_preset()),
            false,
            Scale::Quick,
            1,
        );
        nifdy as f64 / (none.max(1)) as f64
    };
    let cm5 = ratio(NetworkKind::Cm5);
    let full = ratio(NetworkKind::FatTree);
    assert!(
        cm5 + 0.05 >= full,
        "low-bisection CM-5 gain ({cm5:.2}) should be at least the full tree's ({full:.2})"
    );
}

/// Figure 5: "these perturbations dissipate" — NIFDY bounds per-receiver
/// congestion below the uncontrolled run's peak.
#[test]
fn cshift_congestion_is_bounded_by_nifdy() {
    let (_, without, with) = fig5::run(Scale::Smoke, 2, Jobs::serial());
    assert!(
        without.peak >= with.peak,
        "{} < {}",
        without.peak,
        with.peak
    );
}

/// Figure 6: NIFDY's admission control is at least as good as optimized
/// barriers, and exploiting in-order delivery adds on top.
#[test]
fn cshift_nifdy_matches_barriers_and_inorder_wins() {
    let (_, results) = fig6::run(Scale::Smoke, 3, Jobs::serial());
    let by = |label: &str| {
        results
            .iter()
            .find(|r| r.config == label)
            .expect("config present")
            .words_per_kcycle
    };
    let barriers = by("none+barriers");
    let flow = by("nifdy (flow ctl only)");
    let inorder = by("nifdy + in-order");
    assert!(
        flow >= 0.85 * barriers,
        "flow control ({flow:.0}) should be in the ballpark of barriers ({barriers:.0})"
    );
    assert!(
        inorder > flow,
        "in-order ({inorder:.0}) must add on top of flow control ({flow:.0})"
    );
}

/// Figure 9: "while adding delays between successive sends helped in all
/// cases, it was more critical when NIFDY was not included."
#[test]
fn radix_scan_nifdy_reduces_the_need_for_delays() {
    let kind = NetworkKind::SfFatTree; // highest latency: biggest NIFDY gain
    let nifdy = NicChoice::Nifdy(kind.nifdy_preset());
    let plain_nodelay = fig9::run_scan(kind, &NicChoice::Plain, 0, Scale::Smoke, 4);
    let nifdy_nodelay = fig9::run_scan(kind, &nifdy, 0, Scale::Smoke, 4);
    assert!(
        nifdy_nodelay as f64 <= 1.1 * plain_nodelay as f64,
        "NIFDY without delays ({nifdy_nodelay}) should not lose to plain ({plain_nodelay})"
    );
}

/// §4.5: the coalesce phase is insensitive to NIFDY — "NIFDY's
/// restrictiveness did not hurt performance".
#[test]
fn radix_coalesce_is_neutral() {
    let kind = NetworkKind::FatTree;
    let none = fig9::run_coalesce(kind, &NicChoice::Plain, Scale::Smoke, 5);
    let with = fig9::run_coalesce(
        kind,
        &NicChoice::Nifdy(kind.nifdy_preset()),
        Scale::Smoke,
        5,
    );
    let ratio = with as f64 / none as f64;
    assert!((0.6..=1.67).contains(&ratio), "coalesce ratio {ratio:.2}");
}

/// Table 3 regime checks: the latency fits behave like the paper's
/// (store-and-forward slope ≫ cut-through slope; butterfly constant hops).
#[test]
fn table3_profiles_match_paper_regimes() {
    let (_, profiles) = table3::run(1, Jobs::serial());
    let by = |label: &str| {
        profiles
            .iter()
            .find(|p| p.network == label)
            .expect("profile present")
            .clone()
    };
    assert!(by("sf-fat-tree").lat_slope > 3.0 * by("fat-tree").lat_slope);
    assert_eq!(by("butterfly").max_hops, 3);
    assert_eq!(by("fat-tree").max_hops, 6);
    assert_eq!(by("mesh-2d").max_hops, 14);
    // Fat trees have more volume per node than the mesh (the paper's
    // rationale for their generous parameters).
    assert!(by("fat-tree").volume_flits_per_node > by("mesh-2d").volume_flits_per_node);
}
