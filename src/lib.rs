//! Root crate of the NIFDY reproduction workspace: re-exports the member
//! crates so examples and integration tests can use one dependency.
//!
//! See the individual crates for the real APIs:
//! [`nifdy`] (the protocol), [`nifdy_net`] (fabrics), [`nifdy_traffic`]
//! (workloads), [`nifdy_harness`] (paper experiments), [`nifdy_sim`]
//! (kernel).

#![forbid(unsafe_code)]

pub use nifdy;
pub use nifdy_harness;
pub use nifdy_net;
pub use nifdy_sim;
pub use nifdy_traffic;
