//! EM3D (§4.4) across two networks: the irregular-graph workload whose
//! cross-processor arcs turn into message traffic. Compares the three
//! interface models plus NIFDY's in-order payload benefit.
//!
//! ```text
//! cargo run --release --example em3d
//! ```

use nifdy_harness::NetworkKind;
use nifdy_net::Fabric;
use nifdy_traffic::{Driver, Em3dParams, Em3dPlan, NicChoice, SoftwareModel};

fn cycles_per_iter(kind: NetworkKind, choice: &NicChoice, inorder: bool) -> f64 {
    let fab = Fabric::new(kind.topology(64, 1), kind.fabric_config(1));
    let sw = SoftwareModel::cm5_library(!inorder && kind.reorders());
    let mut params = Em3dParams::more_communication(1);
    // A quarter of the paper's graph keeps the run under a minute while
    // preserving the communication shape.
    params.n_nodes /= 4;
    params.iters = 2;
    let mut driver = Driver::new(fab, choice, sw, params.build(64, sw)).expect("driver builds");
    assert!(driver.run_until_quiet(50_000_000), "EM3D did not finish");
    driver.fabric().now().as_u64() as f64 / f64::from(params.iters)
}

fn main() {
    let mut params = Em3dParams::more_communication(1);
    params.n_nodes /= 4;
    let plan = Em3dPlan::generate(params, 64);
    let remote_arcs: u64 = plan
        .sends
        .iter()
        .flat_map(|v| v.iter().map(|(_, w)| u64::from(*w)))
        .sum();
    println!(
        "EM3D, 64 processors, n_nodes={}, d_nodes={}, local_p={}%, dist_span={}",
        params.n_nodes, params.d_nodes, params.local_p, params.dist_span
    );
    println!("remote value updates per iteration: {remote_arcs}\n");

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "network", "none", "buffers", "nifdy-", "nifdy"
    );
    for kind in [NetworkKind::FatTree, NetworkKind::Mesh2D] {
        let preset = kind.nifdy_preset();
        let none = cycles_per_iter(kind, &NicChoice::Plain, false);
        let buffers = cycles_per_iter(kind, &NicChoice::BuffersOnly(preset.clone()), false);
        let flow = cycles_per_iter(kind, &NicChoice::Nifdy(preset.clone()), false);
        let inorder = cycles_per_iter(kind, &NicChoice::Nifdy(preset), true);
        println!(
            "{:<14} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            kind.label(),
            none,
            buffers,
            flow,
            inorder
        );
    }
    println!(
        "\nColumns are cycles per iteration (lower is better). 'nifdy-' is \
         flow control only; 'nifdy' also lets the library exploit in-order \
         delivery (denser packets, cheaper receive path). On the mesh the \
         network already delivers in order, so all columns use the in-order \
         library and the protocol changes little — exactly the paper's \
         Figure 8 pattern."
    );
}
