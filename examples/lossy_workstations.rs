//! The §6.2 extension: NIFDY over a network of workstations that drops
//! packets. Retransmission timers and the duplicate bit make the loss
//! invisible to the application — every packet arrives exactly once, in
//! order.
//!
//! ```text
//! cargo run --release --example lossy_workstations
//! ```

use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, UserData};
use nifdy_sim::NodeId;

fn main() {
    let drop_prob = 0.2;
    let cfg = FabricConfig::default()
        .with_drop_prob(drop_prob)
        .with_seed(2026);
    let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), cfg);

    let nic_cfg = NifdyConfig::mesh().with_retx_timeout(2_000);
    let mut nics: Vec<NifdyUnit> = (0..16)
        .map(|i| NifdyUnit::new(NodeId::new(i), nic_cfg.clone()))
        .collect();

    // Every node sends a 12-packet bulk message to its diagonal opposite.
    let total_per_node = 12u32;
    let mut queued = [0u32; 16];
    let mut received: Vec<Vec<u32>> = vec![Vec::new(); 16];

    let expected: usize = 16 * total_per_node as usize;
    let mut delivered = 0usize;
    while delivered < expected {
        for i in 0..16 {
            let dst = NodeId::new(15 - i);
            while queued[i] < total_per_node {
                let pkt = OutboundPacket::new(dst, 8)
                    .with_bulk(true)
                    .with_user(UserData {
                        msg_id: i as u64,
                        pkt_index: queued[i],
                        msg_packets: total_per_node,
                        user_words: 7,
                    });
                if !nics[i].try_send(pkt, fab.now()) {
                    break;
                }
                queued[i] += 1;
            }
        }
        for nic in &mut nics {
            nic.step(&mut fab);
        }
        fab.step();
        for (i, nic) in nics.iter_mut().enumerate() {
            if let Some(d) = nic.poll(fab.now()) {
                received[i].push(d.user.pkt_index);
                delivered += 1;
            }
        }
        assert!(fab.now().as_u64() < 20_000_000, "lossy run stuck");
    }

    let retx: u64 = nics.iter().map(|n| n.stats().retransmitted.get()).sum();
    let dups: u64 = nics
        .iter()
        .map(|n| n.stats().duplicates_dropped.get())
        .sum();
    let dropped = fab.stats().dropped.get();
    println!("fabric drop probability : {drop_prob}");
    println!("packets dropped by fabric: {dropped} (data + acks)");
    println!("retransmissions          : {retx}");
    println!("duplicates discarded     : {dups}");
    println!("delivered to applications: {delivered} / {expected}");
    println!("completed at             : {}", fab.now());

    for (i, seq) in received.iter().enumerate() {
        assert_eq!(seq.len(), total_per_node as usize, "node {i} count");
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "node {i} saw reordering: {seq:?}"
        );
    }
    println!("\nevery node received its message exactly once, in order —");
    println!("\"simple hardware masks an exceptional condition\" (§6.2).");
}
