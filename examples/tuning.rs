//! Parameter tuning with the §2.4 analytic model: derive NIFDY parameters
//! for a network from first principles, then validate the prediction by
//! simulation.
//!
//! ```text
//! cargo run --release --example tuning
//! ```

use nifdy::analysis::{
    min_window_combined_acks, pairwise_bandwidth, scalar_mode_sufficient, Timing,
};
use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_harness::NetworkKind;
use nifdy_net::{Fabric, UserData};
use nifdy_sim::NodeId;

/// Measures sustained pairwise bandwidth (payload words per kilocycle)
/// between the two most distant nodes with a given window.
fn measure_pairwise(kind: NetworkKind, window: u8, packets: u32) -> f64 {
    let fab_cfg = kind.fabric_config(1);
    let mut fab = Fabric::new(kind.topology(64, 1), fab_cfg);
    let (dialogs, w) = if window == 0 { (0, 2) } else { (1, window) };
    let cfg = NifdyConfig::builder()
        .opt_entries(8)
        .pool_entries(8)
        .max_dialogs(dialogs)
        .window(w)
        .build()
        .expect("tuning parameters are valid");
    let (src, dst) = (NodeId::new(0), NodeId::new(63));
    let mut a = NifdyUnit::new(src, cfg.clone());
    let mut b = NifdyUnit::new(dst, cfg);
    let mut queued = 0u32;
    let mut got = 0u32;
    while got < packets {
        while queued < packets {
            let pkt = OutboundPacket::new(dst, 6)
                .with_bulk(window > 0)
                .with_user(UserData {
                    msg_id: 0,
                    pkt_index: queued,
                    msg_packets: packets,
                    user_words: 5,
                });
            if !a.try_send(pkt, fab.now()) {
                break;
            }
            queued += 1;
        }
        a.step(&mut fab);
        b.step(&mut fab);
        fab.step();
        if b.poll(fab.now()).is_some() {
            got += 1;
        }
        assert!(fab.now().as_u64() < 10_000_000, "transfer stuck");
    }
    f64::from(got * 5) / (fab.now().as_u64() as f64 / 1000.0)
}

fn main() {
    // Step 1: the paper's worked example (§2.4.3) — reconstruct it from the
    // measured zero-load latency of our simulated fabrics.
    let t = Timing {
        t_send: 40,
        t_receive: 60,
        t_link: 32,
        t_ackproc: 4,
    };
    println!("Assumed software overheads: {t:?}");
    println!(
        "Equation 1 ceiling: {:.2} payload words/cycle for 6-word packets\n",
        pairwise_bandwidth(5 * 4, t) / 4.0
    );

    for kind in [NetworkKind::FatTree, NetworkKind::SfFatTree] {
        let (slope, intercept) = nifdy_harness::table3::probe_latency(kind, 1);
        let max_d = 6u64;
        let t_lat = (slope * max_d as f64 + intercept) as u64;
        let rt = 2 * t_lat + t.t_ackproc;
        let w = min_window_combined_acks(rt, t.bottleneck());
        println!("{}:", kind.label());
        println!("  measured zero-load latency  T_lat(d) = {slope:.1}d + {intercept:.0}");
        println!("  worst-case round trip       {rt} cycles");
        println!(
            "  scalar mode sufficient?     {}",
            scalar_mode_sufficient(rt, t)
        );
        println!("  Equation 3 window           W >= {w}");

        // Step 2: validate by simulation — compare scalar-only, the
        // predicted window, and an oversized one.
        let scalar = measure_pairwise(kind, 0, 300);
        let predicted = measure_pairwise(kind, (w.min(64) as u8).max(2), 300);
        let oversized = measure_pairwise(kind, 32, 300);
        println!("  measured pairwise bandwidth (words/kcycle):");
        println!("    scalar only : {scalar:.1}");
        println!("    W = {w:<3}    : {predicted:.1}");
        println!("    W = 32      : {oversized:.1}");
        assert!(
            predicted >= scalar,
            "the predicted window should not lose to scalar mode"
        );
        println!();
    }
    println!(
        "The predicted window captures nearly all of the oversized window's \
         bandwidth — Equation 3 sizes the reorder buffers without waste."
    );
}
