//! Quickstart: attach NIFDY units to a fat tree, send a multi-packet
//! message, and watch it arrive in order.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_net::topology::FatTree;
use nifdy_net::{Fabric, FabricConfig, SwitchingPolicy, UserData};
use nifdy_sim::NodeId;

fn main() {
    // A 64-node 4-ary fat tree with cut-through switching, as in the paper.
    let fabric_cfg = FabricConfig::default()
        .with_policy(SwitchingPolicy::CutThrough)
        .with_vc_buf_flits(8);
    let mut fab = Fabric::new(Box::new(FatTree::new(64)), fabric_cfg);

    // One NIFDY unit per node, with the paper's fat-tree parameters
    // (O = 8, B = 8, D = 1, W = 4).
    let mut nics: Vec<NifdyUnit> = (0..64)
        .map(|i| NifdyUnit::new(NodeId::new(i), NifdyConfig::fat_tree()))
        .collect();

    // Node 3 sends a 20-packet bulk message to node 42. The fat tree's
    // adaptive up-routing may reorder packets in flight; NIFDY's bulk-dialog
    // window puts them back in order before the processor sees them.
    let (src, dst) = (NodeId::new(3), NodeId::new(42));
    let total = 20u32;
    let mut queued = 0u32;
    let mut received = Vec::new();

    while received.len() < total as usize {
        while queued < total {
            let pkt = OutboundPacket::new(dst, 6)
                .with_bulk(true)
                .with_user(UserData {
                    msg_id: 1,
                    pkt_index: queued,
                    msg_packets: total,
                    user_words: 5,
                });
            if !nics[src.index()].try_send(pkt, fab.now()) {
                break;
            }
            queued += 1;
        }
        for nic in &mut nics {
            nic.step(&mut fab);
        }
        fab.step();
        if let Some(d) = nics[dst.index()].poll(fab.now()) {
            received.push(d.user.pkt_index);
        }
        assert!(fab.now().as_u64() < 100_000, "something is stuck");
    }

    println!("delivered {} packets by {}", received.len(), fab.now());
    println!("arrival order: {received:?}");
    assert!(
        received.windows(2).all(|w| w[0] < w[1]),
        "NIFDY must deliver in order"
    );
    let s = nics[src.index()].stats();
    println!(
        "sender: {} packets ({} bulk), {} acks consumed",
        s.sent.get(),
        s.sent_bulk.get(),
        s.acks_received.get()
    );
    let r = nics[dst.index()].stats();
    println!(
        "receiver: {} dialogs granted, {} acks sent (combined acks cover W/2 = {} packets)",
        r.dialogs_granted.get(),
        r.acks_sent.get(),
        NifdyConfig::fat_tree().window / 2
    );
}
