//! The Figure 5/6 story in one binary: run the cyclic-shift all-to-all on
//! the CM-5-style fat tree four ways and watch NIFDY's admission control
//! beat software barriers.
//!
//! ```text
//! cargo run --release --example cshift_showdown
//! ```

use nifdy_harness::{heat_map, NetworkKind};
use nifdy_net::Fabric;
use nifdy_sim::NodeId;
use nifdy_traffic::{CShiftConfig, Driver, NicChoice, SoftwareModel};

fn run(choice: &NicChoice, barriers: bool, inorder: bool) -> (u64, f64, Vec<Vec<f64>>) {
    let kind = NetworkKind::Cm5;
    let nodes = 32;
    let fab = Fabric::new(kind.topology(nodes, 1), kind.fabric_config(1));
    let sw = SoftwareModel::cm5_library(!inorder);
    let cfg = CShiftConfig::new(45, sw).with_barriers(barriers);
    let mut driver = Driver::new(fab, choice, sw, cfg.build(nodes)).expect("driver builds");

    let mut series = vec![Vec::new(); nodes];
    let cap = 3_000_000u64;
    let mut finish = cap;
    for c in 0..cap {
        if c % 8_000 == 0 {
            for (r, s) in series.iter_mut().enumerate() {
                s.push(f64::from(driver.fabric().pending_for(NodeId::new(r))));
            }
        }
        driver.step();
        if driver.processors().iter().all(|p| p.is_done()) && driver.fabric().in_network() == 0 {
            finish = c;
            break;
        }
    }
    let words = driver.user_words_received() as f64;
    (finish, words / (finish.max(1) as f64 / 1000.0), series)
}

fn main() {
    let preset = NetworkKind::Cm5.nifdy_preset();
    println!("C-shift, 32 nodes, CM-5-style fat tree, 45 words per partner\n");

    let cases = [
        ("plain, no barriers", NicChoice::Plain, false, false),
        (
            "plain + barriers (Strata-style)",
            NicChoice::Plain,
            true,
            false,
        ),
        (
            "NIFDY, flow control only",
            NicChoice::Nifdy(preset.clone()),
            false,
            false,
        ),
        (
            "NIFDY + in-order library",
            NicChoice::Nifdy(preset.clone()),
            false,
            true,
        ),
    ];
    let mut maps = Vec::new();
    for (label, choice, barriers, inorder) in &cases {
        let (finish, wpk, series) = run(choice, *barriers, *inorder);
        println!("{label:35} finished at cycle {finish:>9}  ({wpk:.1} words/kcycle)");
        maps.push((label, series));
    }

    println!();
    for (label, series) in [&maps[0], &maps[2]] {
        println!("{}", heat_map(label, series));
    }
    println!(
        "Without NIFDY, dark streaks persist: a receiver that falls behind \
         accumulates packets and slows every matched sender. With NIFDY the \
         'rightful' sender owns the bulk dialog, so perturbations dissipate."
    );
}
